//! Brooks' theorem: sequential (Lovász-style, via the block-cut tree)
//! and distributed (Theorem 5 of the paper).
//!
//! *Sequential* ([`brooks_color`]): any connected graph with maximum
//! degree `Δ >= 3` that is not the complete graph `K_{Δ+1}` is
//! Δ-colorable. We color the block-cut tree block by block; within a
//! block a precolored attachment vertex makes reverse-BFS greedy
//! coloring succeed, and the first block uses the classical Lovász
//! construction (two non-adjacent neighbors of a root get the same
//! color).
//!
//! *Distributed* ([`repair_single_uncolored`]): given a Δ-coloring with a
//! single uncolored node `v`, the coloring can be completed by
//! re-coloring only inside the `2·log_{Δ-1} n` neighborhood of `v`
//! (Theorem 5). The procedure walks a "token" toward the nearest
//! small-degree node or degree-choosable component (Lemma 16 guarantees
//! one exists in range): each step colors the token node with its path
//! successor's color and uncolors the successor; a small-degree endpoint
//! always has a free color, and a DCC endpoint is re-colored wholesale
//! via its degree-choosability.

use crate::gallai::{self, GallaiMsg};
use crate::palette::{Color, ColoringError, PartialColoring};
use delta_graphs::bfs;
use delta_graphs::components::{block_order, blocks, is_connected};
use delta_graphs::props;
use delta_graphs::{Graph, NodeId};
use local_model::wire::gamma_bits;
use local_model::{
    collect_ball_centered, BitReader, BitWriter, RoundLedger, WireCodec, WireParams,
};

/// Wire format of the Theorem 5 repair. The *first* endpoint probe (the
/// radius-2 ball that resolves the overwhelming majority of repairs)
/// **executes through the engine** via
/// [`local_model::collect_ball_centered`] — a TTL probe wave plus a
/// certificate flood back, `2·r` measured rounds confined to the ball;
/// the doubling deepening beyond radius 2 and the token walk remain
/// charged central simulations (this enum declares their equivalent
/// wire shapes). Locating a deep endpoint collects the `2·log_{Δ-1} n`
/// ball (a [`GallaiMsg`] relay — unbounded), so `max_bits` is `None`
/// and the repair is **LOCAL-only**; the color-shift walk itself is
/// `O(log palette)` bits per step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrooksMsg {
    /// Endpoint search: ball-collection relay.
    Probe(GallaiMsg),
    /// Token step to the path successor: "take color `c`, then uncolor
    /// yourself and pass the token on".
    Shift(u32),
    /// Endpoint recoloring: "your new color within the DCC is `c`".
    Assign(u32),
}

impl WireCodec for BrooksMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            BrooksMsg::Probe(g) => {
                w.write_bits(0, 2);
                g.encode(w);
            }
            BrooksMsg::Shift(c) => {
                w.write_bits(1, 2);
                w.write_gamma(*c as u64);
            }
            BrooksMsg::Assign(c) => {
                w.write_bits(2, 2);
                w.write_gamma(*c as u64);
            }
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        match r.read_bits(2)? {
            0 => GallaiMsg::decode(r).map(BrooksMsg::Probe),
            1 => r.read_gamma().map(|c| BrooksMsg::Shift(c as u32)),
            2 => r.read_gamma().map(|c| BrooksMsg::Assign(c as u32)),
            _ => None,
        }
    }
    fn encoded_bits(&self) -> u64 {
        match self {
            BrooksMsg::Probe(g) => 2 + g.encoded_bits(),
            BrooksMsg::Shift(c) | BrooksMsg::Assign(c) => 2 + gamma_bits(*c as u64),
        }
    }
    fn max_bits(_p: &WireParams) -> Option<u64> {
        None
    }
}

/// Computes a Δ-coloring of a connected graph via Brooks' theorem.
///
/// Handles `Δ <= 2` directly (paths and even cycles 2-colored; odd
/// cycles get 3 colors if `delta >= 3` is passed, otherwise fail).
///
/// # Example
///
/// ```
/// use delta_coloring::brooks::brooks_color;
/// use delta_graphs::generators;
///
/// // The Petersen graph is 3-regular and 3-colorable by Brooks.
/// let g = generators::petersen_like();
/// let coloring = brooks_color(&g, 3)?;
/// delta_coloring::verify::check_delta_coloring(&g, &coloring)?;
/// # Ok::<(), delta_coloring::ColoringError>(())
/// ```
///
/// # Errors
///
/// [`ColoringError::Unsolvable`] for complete graphs `K_{Δ+1}` and odd
/// cycles when `delta == 2` — exactly the Brooks exceptions — and for
/// disconnected input.
pub fn brooks_color(g: &Graph, delta: usize) -> Result<PartialColoring, ColoringError> {
    if g.n() == 0 {
        return Ok(PartialColoring::new(0));
    }
    if !is_connected(g) {
        return Err(ColoringError::Unsolvable {
            context: "graph is disconnected".into(),
        });
    }
    if g.max_degree() > delta {
        return Err(ColoringError::Unsolvable {
            context: format!("max degree {} exceeds palette {delta}", g.max_degree()),
        });
    }
    if props::is_clique(g) {
        return if g.n() <= delta {
            // K_n with n <= Δ colors trivially.
            let mut c = PartialColoring::new(g.n());
            for v in g.nodes() {
                c.set(v, Color(v.0));
            }
            Ok(c)
        } else {
            Err(ColoringError::Unsolvable {
                context: format!("complete graph K_{} needs {} colors", g.n(), g.n()),
            })
        };
    }
    if props::is_path(g) {
        if g.n() == 1 {
            let mut c = PartialColoring::new(1);
            c.set(NodeId(0), Color(0));
            return Ok(c);
        }
        if delta >= 2 {
            return Ok(two_color_path_or_even_cycle(g));
        }
        return Err(ColoringError::Unsolvable {
            context: "a path with an edge needs 2 colors".into(),
        });
    }
    if props::is_cycle(g) {
        if g.n().is_multiple_of(2) {
            return Ok(two_color_path_or_even_cycle(g));
        }
        if delta >= 3 {
            let mut c = two_color_path_or_even_cycle_skip_last(g);
            let last = last_cycle_node(g);
            let free = c.free_colors(g, last, delta);
            c.set(last, free[0]);
            return Ok(c);
        }
        return Err(ColoringError::Unsolvable {
            context: "odd cycle is not 2-colorable".into(),
        });
    }
    // General case: block-by-block over the block-cut tree.
    let b = blocks(g);
    let order = block_order(g, &b);
    let mut coloring = PartialColoring::new(g.n());
    for (bi, attach) in order {
        color_block(g, &b.blocks[bi], attach, delta, &mut coloring)?;
    }
    debug_assert!(coloring.is_total());
    debug_assert!(coloring.validate_proper(g).is_ok());
    Ok(coloring)
}

fn last_cycle_node(g: &Graph) -> NodeId {
    // The node at maximal BFS distance from node 0 along the cycle.
    let d = bfs::distances(g, NodeId(0));
    g.nodes().max_by_key(|v| d[v.index()]).expect("non-empty")
}

fn two_color_path_or_even_cycle(g: &Graph) -> PartialColoring {
    let d = bfs::distances(g, NodeId(0));
    let mut c = PartialColoring::new(g.n());
    for v in g.nodes() {
        c.set(v, Color(d[v.index()] % 2));
    }
    c
}

fn two_color_path_or_even_cycle_skip_last(g: &Graph) -> PartialColoring {
    let last = last_cycle_node(g);
    let mut c = two_color_path_or_even_cycle(g);
    c.unset(last);
    c
}

/// Colors one block of the block-cut tree, respecting the already
/// colored attachment vertex (if any). All other block members must be
/// uncolored.
fn color_block(
    g: &Graph,
    block: &[NodeId],
    attach: Option<NodeId>,
    delta: usize,
    coloring: &mut PartialColoring,
) -> Result<(), ColoringError> {
    let (sub, map) = g.induced(block);
    // Color the block ignoring the attachment constraint, then permute
    // two colors so the attachment vertex matches its existing color
    // (a color permutation of a proper coloring stays proper, and only
    // block-internal vertices are affected).
    let mut solved = color_block_unconstrained(&sub, delta)?;
    if let Some(a) = attach {
        let al = NodeId::from_index(map.binary_search(&a).expect("attachment vertex in block"));
        let want = coloring.get(a).expect("attachment vertex already colored");
        let have = solved.get(al).expect("solver returns total colorings");
        if want != have {
            for v in sub.nodes() {
                let c = solved.get(v).expect("total");
                if c == have {
                    solved.set(v, want);
                } else if c == want {
                    solved.set(v, have);
                }
            }
        }
    }
    for (i, &v) in map.iter().enumerate() {
        if Some(v) != attach {
            coloring.set(v, solved.get(NodeId::from_index(i)).expect("total"));
        }
    }
    Ok(())
}

/// Δ-colors a single block (given as its own graph), unconstrained.
fn color_block_unconstrained(sub: &Graph, delta: usize) -> Result<PartialColoring, ColoringError> {
    let n = sub.n();
    // Cliques (includes K2 bridge blocks): need |block| colors;
    // |block| <= Δ always holds except for the whole-graph clique,
    // which brooks_color rejects earlier.
    if props::is_clique(sub) {
        if n > delta {
            return Err(ColoringError::Unsolvable {
                context: format!("clique block of size {n} exceeds palette {delta}"),
            });
        }
        let mut c = PartialColoring::new(n);
        for v in sub.nodes() {
            c.set(v, Color(v.0));
        }
        return Ok(c);
    }
    // Cycles: walk around; the final node sees two colored neighbors,
    // which 3 colors (or 2 for even length) always accommodate.
    if props::is_cycle(sub) {
        if delta < 3 && n % 2 == 1 {
            return Err(ColoringError::Unsolvable {
                context: "odd cycle block with a 2-color palette".into(),
            });
        }
        let start = NodeId(0);
        let mut c = PartialColoring::new(n);
        c.set(start, Color(0));
        let mut prev = start;
        let mut cur = sub.neighbors(start)[0];
        while cur != start {
            let free = c.free_colors(sub, cur, delta.max(2));
            c.set(cur, free[0]);
            let next = *sub
                .neighbors(cur)
                .iter()
                .find(|&&w| w != prev)
                .expect("cycle node has two neighbors");
            prev = cur;
            cur = next;
        }
        crate::palette::check_k_coloring(sub, &c, delta.max(2))?;
        return Ok(c);
    }

    // General 2-connected block. If some vertex has block-degree < Δ,
    // root the reverse-BFS greedy there: every non-root node has an
    // uncolored parent at its turn (at most deg-1 <= Δ-1 colored
    // neighbors), and the root has degree < Δ.
    if let Some(root) = sub.nodes().find(|&v| sub.degree(v) < delta) {
        return Ok(reverse_bfs_greedy(
            sub,
            delta,
            PartialColoring::new(n),
            root,
            &[],
        ));
    }
    // Δ-regular 2-connected non-clique non-cycle block: Lovász's
    // construction. Find x with non-adjacent neighbors a, b such that
    // sub - {a, b} is connected; give a and b the same color, so x (the
    // last node colored) sees at most Δ-1 distinct colors.
    let (x, a, b) = lovasz_triple(sub).ok_or_else(|| ColoringError::Unsolvable {
        context: "no Lovász triple found in a regular 2-connected block".into(),
    })?;
    let mut start = PartialColoring::new(n);
    start.set(a, Color(0));
    start.set(b, Color(0));
    Ok(reverse_bfs_greedy(sub, delta, start, x, &[a, b]))
}

/// Greedy coloring in order of decreasing BFS distance from `root`
/// (root last), skipping `excluded` nodes (already colored) in the BFS.
fn reverse_bfs_greedy(
    sub: &Graph,
    delta: usize,
    mut coloring: PartialColoring,
    root: NodeId,
    excluded: &[NodeId],
) -> PartialColoring {
    // BFS in sub minus excluded.
    let keep: Vec<NodeId> = sub.nodes().filter(|v| !excluded.contains(v)).collect();
    let (h, map) = sub.induced(&keep);
    let root_local = NodeId::from_index(map.binary_search(&root).expect("root not excluded"));
    let d = bfs::distances(&h, root_local);
    let mut order: Vec<NodeId> = h.nodes().collect();
    order.sort_by_key(|v| std::cmp::Reverse(d[v.index()]));
    for lv in order {
        let v = map[lv.index()];
        if !coloring.is_colored(v) {
            let free = coloring.free_colors(sub, v, delta);
            let c = *free
                .first()
                .expect("reverse-BFS greedy invariant: an uncolored neighbor remains");
            coloring.set(v, c);
        }
    }
    coloring
}

/// Finds `(x, a, b)`: `a, b` non-adjacent neighbors of `x` with
/// `sub - {a, b}` connected (the classical construction in Lovász's
/// proof of Brooks' theorem; exists in every 2-connected, regular,
/// non-complete, non-cycle graph with `Δ >= 3`).
fn lovasz_triple(sub: &Graph) -> Option<(NodeId, NodeId, NodeId)> {
    let n = sub.n();
    for x in sub.nodes() {
        let nbrs = sub.neighbors(x);
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if sub.has_edge(a, b) {
                    continue;
                }
                // Check connectivity of sub - {a, b}.
                if subgraph_connected_excluding(sub, a, b) == n - 2 {
                    return Some((x, a, b));
                }
            }
        }
    }
    None
}

/// Number of nodes reachable from some node of `sub - {a, b}`.
fn subgraph_connected_excluding(sub: &Graph, a: NodeId, b: NodeId) -> usize {
    let n = sub.n();
    if n <= 2 {
        return 0;
    }
    let start = sub.nodes().find(|&v| v != a && v != b).expect("n > 2");
    let mut seen = vec![false; n];
    seen[a.index()] = true;
    seen[b.index()] = true;
    let mut stack = vec![start];
    seen[start.index()] = true;
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for &w in sub.neighbors(u) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                count += 1;
                stack.push(w);
            }
        }
    }
    count
}

/// Statistics of one distributed Brooks repair (Theorem 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Maximum distance from the initially uncolored node of any node
    /// whose color changed (0 if `v` itself had a free color).
    pub radius: usize,
    /// Number of token moves performed.
    pub moved: usize,
    /// Whether a degree-choosable component was recolored.
    pub used_dcc: bool,
}

/// Completes a Δ-coloring that is total except at `v` by recoloring only
/// inside the `O(log_{Δ-1} n)` ball around `v` (Theorem 5).
///
/// # Example
///
/// ```
/// use delta_coloring::brooks::{brooks_color, repair_single_uncolored};
/// use delta_graphs::{generators, NodeId};
/// use local_model::RoundLedger;
///
/// let g = generators::torus(8, 8);
/// let mut coloring = brooks_color(&g, 4)?;
/// coloring.unset(NodeId(17)); // a node reboots
/// let mut ledger = RoundLedger::new();
/// let out = repair_single_uncolored(&g, &mut coloring, NodeId(17), 4, &mut ledger, "fix")?;
/// assert!(coloring.is_total());
/// assert!(out.radius <= delta_coloring::brooks::theorem5_radius(g.n(), 4));
/// # Ok::<(), delta_coloring::ColoringError>(())
/// ```
///
/// Charges `2 × (radius actually inspected)` rounds: one sweep to
/// collect the ball, one to announce the recoloring. The initial
/// radius-2 inspection runs engine-backed (4 measured rounds with real
/// per-edge bit loads, confined to the probed ball); deeper doubling
/// probes are centrally simulated and charged the remainder.
///
/// # Errors
///
/// [`ColoringError::Unsolvable`] if no small-degree node or DCC exists
/// within the theorem's radius — impossible for nice graphs by
/// Lemma 16, so an error indicates a non-nice input.
pub fn repair_single_uncolored(
    g: &Graph,
    coloring: &mut PartialColoring,
    v: NodeId,
    delta: usize,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Result<RepairOutcome, ColoringError> {
    debug_assert!(!coloring.is_colored(v));
    // Quick exit: free color at v itself.
    if let Some(&c) = coloring.free_colors(g, v, delta).first() {
        coloring.set(v, c);
        ledger.charge(phase, 1);
        return Ok(RepairOutcome {
            radius: 0,
            moved: 0,
            used_dcc: false,
        });
    }
    let r_max = theorem5_radius(g.n(), delta);
    // Progressive deepening (doubling search): inspect balls of growing
    // radius until a target appears. The total LOCAL cost of doubling is
    // at most twice the final radius, which is what we charge. This also
    // keeps the inspected blocks small: at the first radius where a DCC
    // closes, it is a short even cycle / small block rather than the
    // giant block a full Theorem-5 ball would form.
    let mut target: Option<(u32, NodeId, Option<Vec<NodeId>>)> = None; // (dist, node, dcc)
    let mut r_explored = 2usize;
    // Rounds already charged by the engine-backed probe; the final
    // central charge below covers only the remainder.
    let mut engine_rounds = 0u64;
    let mut ball;
    loop {
        ball = if engine_rounds == 0 {
            engine_rounds = 2 * r_explored as u64;
            collect_ball_centered(g, v, r_explored, ledger, phase)
        } else {
            g.ball(v, r_explored)
        };
        // Nearest small-degree node.
        for (i, &gl) in ball.globals.iter().enumerate() {
            if g.degree(gl) < delta {
                let d = ball.dist[i];
                if target.as_ref().is_none_or(|t| d < t.0) {
                    target = Some((d, gl, None));
                }
            }
        }
        // Qualifying DCC block closest to the center; among equally
        // close ones, the smallest (cheapest to recolor).
        let b = blocks(&ball.graph);
        for blk in &b.blocks {
            if blk.len() < 4 {
                continue;
            }
            let (sub, _) = ball.graph.induced(blk);
            if props::is_clique(&sub) || props::is_odd_cycle(&sub) {
                continue;
            }
            let (&entry, &d) = blk
                .iter()
                .map(|u| (u, &ball.dist[u.index()]))
                .min_by_key(|&(_, &d)| d)
                .expect("non-empty block");
            let better = match &target {
                None => true,
                Some((td, _, tdcc)) => {
                    d < *td
                        || (d == *td && tdcc.as_ref().is_some_and(|prev| blk.len() < prev.len()))
                }
            };
            if better {
                let globals: Vec<NodeId> = blk.iter().map(|&l| ball.to_global(l)).collect();
                target = Some((d, ball.to_global(entry), Some(globals)));
            }
        }
        if target.is_some() || r_explored >= r_max || ball.len() >= g.n() {
            break;
        }
        r_explored = (r_explored * 2).min(r_max.max(2));
    }
    let Some((_, goal, dcc)) = target else {
        return Err(ColoringError::Unsolvable {
            context: format!(
                "no degree-<Δ node or DCC within radius {r_max} of {v} (graph not nice?)"
            ),
        });
    };

    // Shortest path from v to the goal inside the ball.
    let path = shortest_path_in_ball(&ball, goal);
    let mut token = v;
    let mut moved = 0usize;
    let mut radius = 0usize;
    for &next in path.iter().skip(1) {
        // Free color first: the walk may be cut short.
        if let Some(&c) = coloring.free_colors(g, token, delta).first() {
            coloring.set(token, c);
            let rounds = 2 * (radius.max(r_explored).max(1) as u64);
            ledger.charge(phase, rounds.saturating_sub(engine_rounds));
            return Ok(RepairOutcome {
                radius,
                moved,
                used_dcc: false,
            });
        }
        // No free color: all Δ neighbors carry Δ distinct colors, so
        // adopting the successor's color and uncoloring the successor
        // preserves properness.
        let c_next = coloring.get(next).expect("path interior is colored");
        coloring.set(token, c_next);
        coloring.unset(next);
        token = next;
        moved += 1;
        radius = radius.max(dist_in_ball(&ball, next) as usize);
    }
    // Token arrived at the goal.
    if let Some(&c) = coloring.free_colors(g, token, delta).first() {
        coloring.set(token, c);
        let rounds = 2 * (radius.max(r_explored).max(1) as u64);
        ledger.charge(phase, rounds.saturating_sub(engine_rounds));
        return Ok(RepairOutcome {
            radius,
            moved,
            used_dcc: false,
        });
    }
    let Some(mut component) = dcc else {
        return Err(ColoringError::Unsolvable {
            context: "small-degree target had no free color (invariant violation)".into(),
        });
    };
    component.sort_unstable();
    // Uncolor the DCC (token is its entry node and already uncolored).
    for &u in &component {
        coloring.unset(u);
        radius = radius.max(dist_in_ball(&ball, u) as usize);
    }
    gallai::color_component_respecting(g, &component, delta, coloring)?;
    let rounds = 2 * (radius.max(r_explored).max(1) as u64);
    ledger.charge(phase, rounds.saturating_sub(engine_rounds));
    Ok(RepairOutcome {
        radius,
        moved,
        used_dcc: true,
    })
}

/// The recoloring radius bound of Theorem 5: `2·log_{Δ-1} n` (plus a
/// small constant of slack for rounding).
pub fn theorem5_radius(n: usize, delta: usize) -> usize {
    let base = (delta.max(3) - 1) as f64;
    (2.0 * (n.max(2) as f64).ln() / base.ln()).ceil() as usize + 2
}

fn dist_in_ball(ball: &bfs::Ball, global: NodeId) -> u32 {
    let l = ball.to_local(global).expect("node inside ball");
    ball.dist[l.index()]
}

/// Shortest path (as global node ids, starting at the center) from the
/// ball's center to `goal`.
fn shortest_path_in_ball(ball: &bfs::Ball, goal: NodeId) -> Vec<NodeId> {
    let goal_local = ball.to_local(goal).expect("goal inside ball");
    let tree = bfs::bfs_tree(&ball.graph, ball.center, None);
    let mut path_local = vec![goal_local];
    let mut cur = goal_local;
    while let Some(p) = tree.parent[cur.index()] {
        path_local.push(p);
        cur = p;
    }
    debug_assert_eq!(*path_local.last().unwrap(), ball.center);
    path_local.reverse();
    path_local.into_iter().map(|l| ball.to_global(l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::check_k_coloring;
    use delta_graphs::generators;

    #[test]
    fn brooks_on_families() {
        for (g, delta) in [
            (generators::torus(6, 7), 4),
            (generators::random_regular(200, 4, 3), 4),
            (generators::random_regular(200, 3, 5), 3),
            (generators::hypercube(4), 4),
            (generators::star(5), 5),
            (generators::random_tree(100, 2), 0),
            (generators::petersen_like(), 3),
        ] {
            let delta = if delta == 0 { g.max_degree() } else { delta };
            let c = brooks_color(&g, delta).unwrap();
            check_k_coloring(&g, &c, delta).unwrap();
        }
    }

    #[test]
    fn brooks_exceptions() {
        assert!(brooks_color(&generators::complete(5), 4).is_err());
        assert!(brooks_color(&generators::cycle(5), 2).is_err());
        // But with one extra color they work.
        assert!(brooks_color(&generators::complete(5), 5).is_ok());
        assert!(brooks_color(&generators::cycle(5), 3).is_ok());
    }

    #[test]
    fn brooks_paths_and_even_cycles() {
        let p = generators::path(9);
        let c = brooks_color(&p, 2).unwrap();
        check_k_coloring(&p, &c, 2).unwrap();
        let c6 = generators::cycle(6);
        let c = brooks_color(&c6, 2).unwrap();
        check_k_coloring(&c6, &c, 2).unwrap();
    }

    #[test]
    fn brooks_block_trees() {
        // Gallai trees are exactly the hard block structure; Brooks must
        // still Δ-color them when they are not cliques/odd cycles overall.
        for seed in 0..6 {
            let g = generators::random_gallai_tree(10, 4, seed);
            let delta = g.max_degree();
            if delta < 3 || props::is_clique(&g) || props::is_cycle(&g) || props::is_path(&g) {
                continue;
            }
            let c = brooks_color(&g, delta).unwrap();
            check_k_coloring(&g, &c, delta).unwrap();
        }
    }

    #[test]
    fn repair_on_regular_graphs() {
        for seed in 0..5 {
            let g = generators::random_regular(400, 4, seed);
            let delta = 4;
            let mut c = brooks_color(&g, delta).unwrap();
            let v = NodeId((seed as u32 * 37) % 400);
            c.unset(v);
            let mut ledger = RoundLedger::new();
            let out = repair_single_uncolored(&g, &mut c, v, delta, &mut ledger, "repair").unwrap();
            check_k_coloring(&g, &c, delta).unwrap();
            assert!(
                out.radius <= theorem5_radius(g.n(), delta),
                "radius {}",
                out.radius
            );
            assert!(ledger.total() >= 1);
        }
    }

    #[test]
    fn repair_probe_is_measured_on_the_wire() {
        // A hand-built tight instance (deterministic, unlike sampling a
        // brooks_color output): the star center sees all Δ colors, so
        // the repair must run the engine-backed radius-2 probe — which
        // must leave nonzero measured bits on the ledger.
        let g = generators::star(3);
        let mut c = PartialColoring::new(4);
        c.set(NodeId(1), Color(0));
        c.set(NodeId(2), Color(1));
        c.set(NodeId(3), Color(2));
        assert!(
            c.free_colors(&g, NodeId(0), 3).is_empty(),
            "tight by construction"
        );
        let mut ledger = RoundLedger::new();
        repair_single_uncolored(&g, &mut c, NodeId(0), 3, &mut ledger, "repair").unwrap();
        check_k_coloring(&g, &c, 3).unwrap();
        assert!(ledger.bits_sent() > 0, "probe bits measured");
        assert!(ledger.total() >= 4, "2r engine rounds charged");
    }

    #[test]
    fn repair_uses_free_color_when_available() {
        let g = generators::star(4);
        let mut c = brooks_color(&g, 4).unwrap();
        c.unset(NodeId(1));
        let mut ledger = RoundLedger::new();
        let out = repair_single_uncolored(&g, &mut c, NodeId(1), 4, &mut ledger, "repair").unwrap();
        assert_eq!(out.radius, 0);
        assert_eq!(out.moved, 0);
        check_k_coloring(&g, &c, 4).unwrap();
    }

    #[test]
    fn repair_on_adversarial_tight_coloring() {
        // 3-regular random graph; uncolor a node whose neighbors we
        // forcibly recolor to distinct colors so no free color exists.
        let g = generators::random_regular(300, 3, 9);
        let delta = 3;
        for attempt in 0..10u32 {
            let mut c = brooks_color(&g, delta).unwrap();
            let v = NodeId(attempt * 13 % 300);
            c.unset(v);
            if c.free_colors(&g, v, delta).is_empty() {
                let mut ledger = RoundLedger::new();
                let out =
                    repair_single_uncolored(&g, &mut c, v, delta, &mut ledger, "repair").unwrap();
                check_k_coloring(&g, &c, delta).unwrap();
                assert!(out.moved > 0 || out.used_dcc);
                return;
            }
        }
        // If no tight node found in attempts, the test is vacuous but
        // should not fail; other tests cover the walk.
    }

    #[test]
    fn theorem5_radius_grows_logarithmically() {
        assert!(theorem5_radius(1 << 10, 4) < theorem5_radius(1 << 20, 4));
        assert!(theorem5_radius(1 << 20, 4) <= 2 * theorem5_radius(1 << 10, 4));
        assert!(theorem5_radius(1000, 8) < theorem5_radius(1000, 4));
    }
}
