//! Baseline algorithms the paper compares against (conceptually):
//!
//! * [`randomized_delta_plus_one`] — the "easy" `(Δ+1)`-coloring via
//!   randomized trial coloring, `O(log n)` rounds. Shows the gap the
//!   paper cares about: one fewer color changes the problem completely.
//! * [`ps_style_delta`] — a Panconesi–Srinivasan-style Δ-coloring: first
//!   compute a `(Δ+1)`-coloring, then eliminate the extra color class by
//!   independent Theorem-5 token-walk repairs, batched so that
//!   simultaneously repaired nodes have disjoint recoloring balls. Round
//!   complexity `O(log² n / log Δ)`-ish — polylogarithmic, the regime of
//!   the `O(log³ n / log Δ)` bound of \[PS92, PS95\] that Theorems 1 and
//!   3 improve on (see DESIGN.md §4 for the substitution note).

use crate::brooks::{repair_single_uncolored, theorem5_radius};
use crate::list_coloring::list_color_randomized;
use crate::palette::{ColoringError, Lists, PartialColoring};
use delta_graphs::{bfs, Graph, NodeId};
use local_model::RoundLedger;

/// Computes a `(Δ+1)`-coloring with randomized trial coloring.
///
/// # Errors
///
/// Propagates solver errors (impossible for well-formed graphs: uniform
/// `(Δ+1)` lists always satisfy the `(deg+1)` condition).
pub fn randomized_delta_plus_one(
    g: &Graph,
    seed: u64,
    ledger: &mut RoundLedger,
) -> Result<PartialColoring, ColoringError> {
    let lists = Lists::uniform(g.n(), g.max_degree() + 1);
    list_color_randomized(
        g,
        &lists,
        PartialColoring::new(g.n()),
        seed,
        ledger,
        "delta+1",
    )
}

/// Statistics of a [`ps_style_delta`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PsStats {
    /// Nodes initially carrying the extra (Δ+1-th) color.
    pub extra_class_size: usize,
    /// Number of sequential repair batches.
    pub batches: usize,
    /// Maximum repair radius observed.
    pub max_repair_radius: usize,
}

/// Δ-colors a nice graph by `(Δ+1)`-coloring and then repairing away the
/// extra color class (see module docs).
///
/// # Errors
///
/// Propagates repair failures (non-nice inputs).
pub fn ps_style_delta(
    g: &Graph,
    seed: u64,
    ledger: &mut RoundLedger,
) -> Result<(PartialColoring, PsStats), ColoringError> {
    let delta = g.max_degree();
    let mut coloring = randomized_delta_plus_one(g, seed, ledger)?;
    // The extra class: nodes with color index Δ (palette {0..Δ}).
    let extra: Vec<NodeId> = g
        .nodes()
        .filter(|&v| coloring.get(v).map(|c| c.index()) == Some(delta))
        .collect();
    let extra_class_size = extra.len();
    // Shrink the extra class greedily first: class-Δ nodes form an
    // independent set, so all of them with a free color `< Δ` can
    // re-pick simultaneously (1 round per pass). Only the locally tight
    // nodes — whose neighbors show all Δ colors — need repairs.
    let mut extra = extra;
    for _ in 0..4 {
        let mut progressed = false;
        let picks: Vec<(NodeId, crate::palette::Color)> = extra
            .iter()
            .filter_map(|&v| coloring.free_colors(g, v, delta).first().map(|&c| (v, c)))
            .collect();
        for &(v, c) in &picks {
            coloring.set(v, c);
            progressed = true;
        }
        extra.retain(|&v| coloring.get(v).map(|c| c.index()) == Some(delta));
        ledger.charge("ps-shrink", 1);
        if !progressed {
            break;
        }
    }
    // Uncolor the rest; repairs then only ever see colors < Δ.
    for &v in &extra {
        coloring.unset(v);
    }
    let mut remaining: Vec<NodeId> = extra;
    let mut batches = 0usize;
    let mut max_repair_radius = 0usize;

    // Calibration: a few sequential repairs estimate the typical repair
    // radius, which sets the batch separation. Repairs that later exceed
    // the separation's safety radius are charged sequentially instead of
    // inside the parallel max, keeping the accounting honest.
    let calibration = remaining.len().min(4);
    let mut rho_star = 2usize;
    for _ in 0..calibration {
        let Some(v) = remaining.first().copied() else {
            break;
        };
        let mut sub = RoundLedger::new();
        let out = repair_single_uncolored(g, &mut coloring, v, delta, &mut sub, "repair")?;
        max_repair_radius = max_repair_radius.max(out.radius);
        rho_star = rho_star.max(out.radius);
        ledger.charge("ps-repair", sub.total());
        remaining.retain(|&u| !coloring.is_colored(u));
    }
    let theorem_cap = theorem5_radius(g.n(), delta);
    // Balls of radius `safety` are disjoint when centers are farther
    // than 2·safety apart.
    let safety = rho_star.max(2).min(theorem_cap);
    let sep = 2 * safety + 1;

    while !remaining.is_empty() {
        batches += 1;
        // Greedy batch: pairwise distance > sep, so repairs that stay
        // within radius `safety` have disjoint balls and genuinely run
        // in parallel. The selection is a distance-sep independent set,
        // computable in O(sep) rounds distributively; we charge that.
        let mut batch: Vec<NodeId> = Vec::new();
        let mut blocked = vec![false; g.n()];
        for &v in &remaining {
            if !blocked[v.index()] {
                batch.push(v);
                let ball = bfs::ball(g, v, sep);
                for &w in &ball.globals {
                    blocked[w.index()] = true;
                }
            }
        }
        ledger.charge("ps-batch-select", sep as u64);
        // Parallel repairs: max cost over in-budget repairs; repairs
        // whose radius exceeded the safety budget are charged in full
        // (a real execution would defer them to their own phase).
        let mut batch_ledger_max = 0u64;
        let mut oversized_total = 0u64;
        for &v in &batch {
            let mut sub = RoundLedger::new();
            let out = repair_single_uncolored(g, &mut coloring, v, delta, &mut sub, "repair")?;
            max_repair_radius = max_repair_radius.max(out.radius);
            if out.radius <= safety {
                batch_ledger_max = batch_ledger_max.max(sub.total());
            } else {
                oversized_total += sub.total();
            }
        }
        ledger.charge("ps-repair", batch_ledger_max + oversized_total);
        remaining.retain(|&v| !coloring.is_colored(v));
    }
    debug_assert!(coloring.is_total());
    Ok((
        coloring,
        PsStats {
            extra_class_size,
            batches,
            max_repair_radius,
        },
    ))
}

/// Greedy sequential Δ+1 coloring by id (centralized reference used in
/// tests to cross-check the distributed implementations; costs `n`
/// rounds if executed distributively, so it is never charged).
pub fn greedy_reference(g: &Graph) -> PartialColoring {
    let mut c = PartialColoring::new(g.n());
    for v in g.nodes() {
        let free = c.free_colors(g, v, g.max_degree() + 1);
        c.set(v, free[0]);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::check_k_coloring;
    use crate::verify::check_delta_coloring;
    use delta_graphs::generators;

    #[test]
    fn delta_plus_one_on_families() {
        for (i, g) in [
            generators::random_regular(500, 4, 1),
            generators::torus(10, 10),
            generators::random_tree(300, 2),
            generators::complete(6),
        ]
        .iter()
        .enumerate()
        {
            let mut ledger = RoundLedger::new();
            let c = randomized_delta_plus_one(g, i as u64, &mut ledger).unwrap();
            check_k_coloring(g, &c, g.max_degree() + 1).unwrap();
            assert!(ledger.total() < 80);
        }
    }

    #[test]
    fn ps_style_on_regular_graphs() {
        for seed in 0..3 {
            let g = generators::random_regular(600, 4, seed + 20);
            let mut ledger = RoundLedger::new();
            let (c, stats) = ps_style_delta(&g, seed, &mut ledger).unwrap();
            check_delta_coloring(&g, &c).unwrap();
            assert!(
                stats.extra_class_size > 0,
                "trial coloring used the full palette"
            );
            assert!(stats.batches >= 1);
        }
    }

    #[test]
    fn ps_style_on_torus_and_tree_like() {
        let g = generators::torus(9, 9);
        let mut ledger = RoundLedger::new();
        let (c, _) = ps_style_delta(&g, 5, &mut ledger).unwrap();
        check_delta_coloring(&g, &c).unwrap();

        let g2 = generators::tree_with_chords(300, 30, 3);
        if crate::verify::assert_nice(&g2).is_ok() {
            let mut ledger2 = RoundLedger::new();
            let (c2, _) = ps_style_delta(&g2, 6, &mut ledger2).unwrap();
            check_delta_coloring(&g2, &c2).unwrap();
        }
    }

    #[test]
    fn greedy_reference_is_proper() {
        let g = generators::random_regular(200, 6, 9);
        let c = greedy_reference(&g);
        check_k_coloring(&g, &c, 7).unwrap();
    }
}
