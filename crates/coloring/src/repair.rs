//! Self-healing region repair: detect a damaged Δ-coloring and restore
//! it by re-coloring only the affected balls.
//!
//! This is the recovery half of the fault loop that
//! [`local_model::faults`] injects into: a fault burst (dropped or
//! corrupted messages, a crashed node rejoining with stale state)
//! leaves the coloring with conflicting edges, palette overflows, or
//! uncolored nodes. [`repair_region`] runs [`crate::verify::violations`]
//! to enumerate the exact damage, clears the invalid assignments, and
//! re-colors each hole with the Theorem-5 single-node repair
//! ([`crate::brooks::repair_single_uncolored`]) — ball probes confined
//! to the damaged regions, never a global restart. The returned
//! [`RepairReport`] meters rounds-to-recover and colors-changed per
//! event, which is what the fault-sweep experiments record.

use crate::brooks::repair_single_uncolored;
use crate::palette::{ColoringError, PartialColoring};
use crate::verify::violations;
use delta_graphs::Graph;
use local_model::RoundLedger;

/// Metrics of one detection + self-healing pass over a damaged
/// Δ-coloring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Monochromatic edges found by detection.
    pub conflict_edges: usize,
    /// Nodes whose color overflowed the Δ palette.
    pub out_of_range: usize,
    /// Nodes with no color before repair (as found, before any
    /// clearing).
    pub uncolored_before: usize,
    /// Single-node repairs actually executed.
    pub repairs: usize,
    /// LOCAL rounds charged by this pass: one detection exchange plus
    /// every ball probe and recoloring announcement.
    pub rounds_to_recover: u64,
    /// Nodes whose color differs from before the pass (including nodes
    /// recolored as collateral by a degree-choosable-component walk).
    pub colors_changed: usize,
    /// Largest repair radius any single hole needed.
    pub max_radius: usize,
    /// Repairs that had to recolor a degree-choosable component.
    pub dcc_recolorings: usize,
}

/// Detects all violations of a Δ-coloring and heals them in place.
///
/// Detection charges one synchronous round (every node exchanges its
/// color with its neighbors and reports local violations). Healing then
/// clears the minimum set of assignments — every out-of-palette color,
/// and the larger-id endpoint of each monochromatic edge — and
/// re-colors each hole via the Theorem-5 ball repair, charging the
/// probed radii to `ledger` under `phase`.
///
/// The pass is deterministic: violations are enumerated in node/edge
/// order and holes are filled in ascending node id, so identical damage
/// yields identical post-repair colorings (the determinism suite pins
/// this across [`local_model::ExecMode`]s).
///
/// # Errors
///
/// [`ColoringError::Unsolvable`] if some hole admits no Theorem-5
/// repair — impossible on nice graphs (Lemma 16), so an error indicates
/// a non-nice input.
pub fn repair_region(
    g: &Graph,
    coloring: &mut PartialColoring,
    delta: usize,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Result<RepairReport, ColoringError> {
    let before = coloring.clone();
    let entry_rounds = ledger.total();
    // Detection: one exchange of colors across every edge suffices for
    // each node to see all three violation kinds locally.
    ledger.charge(phase, 1);
    let damage = violations(g, coloring, delta);
    let mut report = RepairReport {
        conflict_edges: damage.conflicting_edges.len(),
        out_of_range: damage.out_of_range.len(),
        uncolored_before: damage.uncolored.len(),
        ..RepairReport::default()
    };
    if damage.is_clean() {
        report.rounds_to_recover = ledger.total() - entry_rounds;
        return Ok(report);
    }
    // Clear the minimum set of invalid assignments: every overflowed
    // color, and one endpoint per monochromatic edge (the larger id, so
    // clearing is order-independent).
    for &(v, _) in &damage.out_of_range {
        coloring.unset(v);
    }
    for &(u, v, _) in &damage.conflicting_edges {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        if coloring.get(a).is_some() && coloring.get(a) == coloring.get(b) {
            coloring.unset(b);
        }
    }
    // Heal holes in ascending node id. A DCC walk for one hole may
    // recolor (even color) other nodes, so re-check before each repair.
    let holes: Vec<_> = coloring.uncolored().collect();
    for v in holes {
        if coloring.is_colored(v) {
            continue;
        }
        let out = repair_single_uncolored(g, coloring, v, delta, ledger, phase)?;
        report.repairs += 1;
        report.max_radius = report.max_radius.max(out.radius);
        if out.used_dcc {
            report.dcc_recolorings += 1;
        }
    }
    debug_assert!(violations(g, coloring, delta).is_clean());
    report.rounds_to_recover = ledger.total() - entry_rounds;
    report.colors_changed = g
        .nodes()
        .filter(|&v| before.get(v) != coloring.get(v))
        .count();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brooks::brooks_color;
    use crate::palette::Color;
    use crate::verify::check_delta_coloring;
    use delta_graphs::{generators, NodeId};

    #[test]
    fn clean_coloring_is_a_cheap_noop() {
        let g = generators::torus(6, 6);
        let mut c = brooks_color(&g, 4).unwrap();
        let snapshot = c.clone();
        let mut ledger = RoundLedger::new();
        let report = repair_region(&g, &mut c, 4, &mut ledger, "repair").unwrap();
        assert_eq!(report.repairs, 0);
        assert_eq!(report.colors_changed, 0);
        assert_eq!(report.rounds_to_recover, 1, "detection round only");
        assert_eq!(c, snapshot);
    }

    #[test]
    fn heals_conflicts_overflows_and_holes() {
        let g = generators::random_regular(64, 4, 3);
        let mut c = brooks_color(&g, 4).unwrap();
        // Damage: one hole, one overflow, one forced conflict.
        c.unset(NodeId(5));
        c.set(NodeId(11), Color(40));
        let u = NodeId(20);
        let w = g.neighbors(u)[0];
        c.set(u, c.get(w).unwrap());
        let mut ledger = RoundLedger::new();
        let report = repair_region(&g, &mut c, 4, &mut ledger, "repair").unwrap();
        assert!(check_delta_coloring(&g, &c).is_ok());
        assert_eq!(report.uncolored_before, 1);
        assert_eq!(report.out_of_range, 1);
        assert!(report.conflict_edges >= 1);
        assert!(report.repairs >= 3);
        assert!(report.rounds_to_recover > report.repairs as u64);
        assert!(report.colors_changed >= 2);
        assert_eq!(ledger.total(), report.rounds_to_recover);
    }

    #[test]
    fn repair_is_deterministic() {
        let g = generators::random_regular(48, 4, 9);
        let base = brooks_color(&g, 4).unwrap();
        let damage = |c: &mut PartialColoring| {
            c.unset(NodeId(2));
            c.unset(NodeId(30));
            c.set(NodeId(17), Color(99));
        };
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut c = base.clone();
            damage(&mut c);
            let mut ledger = RoundLedger::new();
            let report = repair_region(&g, &mut c, 4, &mut ledger, "repair").unwrap();
            runs.push((c, report, ledger.total()));
        }
        assert_eq!(runs[0], runs[1]);
    }
}
