//! Luby's randomized maximal independent set, including execution on
//! power graphs (the substrate of randomized ruling sets, Lemma 20).

use delta_graphs::power::power_graph;
use delta_graphs::{Graph, NodeId};
use local_model::{Engine, Outbox, RoundLedger};
use rand::RngCore;

/// Node status during and after MIS computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MisState {
    Undecided,
    In,
    Out,
}

#[derive(Clone, Copy)]
struct S {
    state: MisState,
    /// Random draw, with the node id as a deterministic tie-breaker.
    draw: (u64, u32),
}

/// Computes a maximal independent set with Luby's algorithm on the
/// message-passing engine.
///
/// Per iteration (2 LOCAL rounds): every undecided node draws a fresh
/// random value from its private stream and broadcasts it; strict local
/// minima join the set; new members announce themselves and their
/// neighbors drop out. Terminates in `O(log n)` iterations w.h.p.; a
/// deterministic greedy cleanup guarantees termination in the
/// (vanishing-probability) event the iteration cap is hit.
///
/// Returns the membership mask.
///
/// # Example
///
/// ```
/// use delta_coloring::mis::{is_mis, luby_mis};
/// use delta_graphs::generators;
/// use local_model::RoundLedger;
///
/// let g = generators::cycle(10);
/// let mut ledger = RoundLedger::new();
/// let mis = luby_mis(&g, 7, &mut ledger, "mis");
/// assert!(is_mis(&g, &mis));
/// ```
pub fn luby_mis(g: &Graph, seed: u64, ledger: &mut RoundLedger, phase: &str) -> Vec<bool> {
    let mut engine = Engine::new(g, seed, |v| S {
        state: MisState::Undecided,
        draw: (0, v.0),
    });
    let cap = 8 * ((g.n() as u64).max(2).ilog2() as u64 + 2) + 64;
    let mut iterations = 0;
    while engine
        .states()
        .iter()
        .any(|s| s.state == MisState::Undecided)
        && iterations < cap
    {
        iterations += 1;
        // Round 1: undecided nodes draw fresh values (a local
        // computation, free in the LOCAL model) and exchange them;
        // strict local minima join.
        engine.step(
            ledger,
            phase,
            |ctx, s: &mut S, out: &mut Outbox<(u64, u32)>| {
                if s.state == MisState::Undecided {
                    s.draw.0 = ctx.rng.next_u64();
                    out.broadcast(s.draw);
                }
            },
            |_, s, inbox| {
                if s.state == MisState::Undecided && inbox.iter().all(|&(_, d)| s.draw < d) {
                    s.state = MisState::In;
                }
            },
        );
        // Round 2: new members announce; neighbors drop out.
        engine.step(
            ledger,
            phase,
            |_, s: &mut S, out: &mut Outbox<()>| {
                if s.state == MisState::In {
                    out.broadcast(());
                }
            },
            |_, s, inbox| {
                if s.state == MisState::Undecided && !inbox.is_empty() {
                    s.state = MisState::Out;
                }
            },
        );
    }
    // Deterministic cleanup (unreachable w.h.p.): greedily add remaining
    // undecided nodes in id order.
    let mut member: Vec<bool> = engine
        .states()
        .iter()
        .map(|s| s.state == MisState::In)
        .collect();
    for v in g.nodes() {
        if engine.states()[v.index()].state == MisState::Undecided
            && !g.neighbors(v).iter().any(|&w| member[w.index()])
        {
            member[v.index()] = true;
        }
    }
    member
}

/// Runs Luby's MIS on the power graph `G^k`; one simulated round costs
/// `k` rounds in `G`, so the ledger is charged `k×`.
///
/// The result is an independent set of `G^k` (pairwise distance `> k` in
/// `G`) that dominates every node within distance `k` — i.e. a
/// `(k+1, k)` ruling set of `G` (Lemma 20 (4) in spirit).
pub fn luby_mis_on_power(
    g: &Graph,
    k: usize,
    seed: u64,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Vec<bool> {
    assert!(k >= 1);
    let gk = power_graph(g, k);
    let mut sub = RoundLedger::new();
    let member = luby_mis(&gk, seed, &mut sub, phase);
    ledger.charge(phase, sub.total() * k as u64);
    member
}

/// Verifies the MIS properties: independence and maximality.
pub fn is_mis(g: &Graph, member: &[bool]) -> bool {
    let independent = g
        .edges()
        .all(|(u, v)| !(member[u.index()] && member[v.index()]));
    let maximal = g
        .nodes()
        .all(|v| member[v.index()] || g.neighbors(v).iter().any(|&w| member[w.index()]));
    independent && maximal
}

/// Collects the member node ids from a membership mask.
pub fn members(mask: &[bool]) -> Vec<NodeId> {
    mask.iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(i, _)| NodeId::from_index(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_graphs::generators;

    #[test]
    fn mis_on_families() {
        for (i, g) in [
            generators::cycle(20),
            generators::torus(6, 6),
            generators::random_regular(300, 4, 5),
            generators::complete(7),
            generators::star(9),
            generators::path(2),
        ]
        .iter()
        .enumerate()
        {
            let mut ledger = RoundLedger::new();
            let m = luby_mis(g, i as u64, &mut ledger, "mis");
            assert!(is_mis(g, &m), "family {i}");
            assert!(ledger.total() > 0);
        }
    }

    #[test]
    fn mis_round_count_logarithmic() {
        let g = generators::random_regular(2000, 6, 1);
        let mut ledger = RoundLedger::new();
        let m = luby_mis(&g, 3, &mut ledger, "mis");
        assert!(is_mis(&g, &m));
        assert!(ledger.total() < 120, "rounds {}", ledger.total());
    }

    #[test]
    fn mis_on_power_graph_separation() {
        let g = generators::cycle(30);
        let mut ledger = RoundLedger::new();
        let m = luby_mis_on_power(&g, 3, 9, &mut ledger, "ruling");
        let sel = members(&m);
        assert!(!sel.is_empty());
        // Pairwise distance > 3 on the cycle.
        for (i, &u) in sel.iter().enumerate() {
            for &v in &sel[i + 1..] {
                let d = delta_graphs::bfs::distances(&g, u)[v.index()];
                assert!(d > 3, "{u} and {v} at distance {d}");
            }
        }
        // Domination within 3.
        let dist = delta_graphs::bfs::multi_source_distances(&g, &sel);
        assert!(dist.iter().all(|&d| d <= 3));
    }

    #[test]
    fn empty_graph_mis() {
        let g = Graph::empty(5);
        let mut ledger = RoundLedger::new();
        let m = luby_mis(&g, 0, &mut ledger, "mis");
        assert!(m.iter().all(|&x| x));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::random_regular(200, 4, 8);
        let mut l1 = RoundLedger::new();
        let mut l2 = RoundLedger::new();
        let a = luby_mis(&g, 5, &mut l1, "mis");
        let b = luby_mis(&g, 5, &mut l2, "mis");
        assert_eq!(a, b);
        assert_eq!(l1.total(), l2.total());
    }
}
