//! Luby's randomized maximal independent set, including execution on
//! power graphs (the substrate of randomized ruling sets, Lemma 20).
//!
//! The iteration body is written once against
//! [`local_model::RoundDriver`], so the same program runs on the host
//! graph ([`luby_mis`]), on `G^k` through the [`PowerOverlay`]
//! ([`luby_mis_on_power`] — `k` measured relay rounds per virtual
//! round, nothing materialized), and on `(G[S])^k` through the
//! composed overlay ([`luby_mis_within_power`]).

use delta_graphs::{Graph, NodeId};
use local_model::wire::{gamma_bits, gamma_max_bits};
use local_model::{
    BitReader, BitWriter, Engine, InducedOverlay, Outbox, OverlayEngine, PowerOverlay, RoundDriver,
    RoundLedger, VirtualTopology, WireCodec, WireParams,
};

/// Node status during and after MIS computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MisState {
    Undecided,
    In,
    Out,
}

/// Wire format of Luby's MIS. Draws come from a `min(n³, 2⁶⁰)`-sized
/// domain — `O(log n)` random bits, as in CONGEST formulations of Luby;
/// the sender id breaks the (1/n-probability per pair per round) ties
/// deterministically — so every message is `O(log n)` bits and the
/// substrate is CONGEST-feasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisMsg {
    /// Round 1: "my fresh random draw (with my id as tiebreak)".
    Draw {
        /// The random value, drawn from `[0, draw_domain(n))`.
        value: u64,
        /// Sender id, the deterministic tiebreak.
        tiebreak: u32,
    },
    /// Round 2: "I joined the MIS".
    Joined,
}

/// Size of the per-round random-draw domain for an `n`-node graph:
/// `n³` capped at `2⁶⁰` (collisions are broken by id, so the cap only
/// affects astronomically large graphs).
pub fn draw_domain(n: u64) -> u64 {
    n.max(2).saturating_pow(3).min(1 << 60)
}

impl WireCodec for MisMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            MisMsg::Draw { value, tiebreak } => {
                w.write_bool(false);
                w.write_gamma(*value);
                w.write_gamma(*tiebreak as u64);
            }
            MisMsg::Joined => w.write_bool(true),
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        match r.read_bool()? {
            false => Some(MisMsg::Draw {
                value: r.read_gamma()?,
                tiebreak: r.read_gamma()? as u32,
            }),
            true => Some(MisMsg::Joined),
        }
    }
    fn encoded_bits(&self) -> u64 {
        match self {
            MisMsg::Draw { value, tiebreak } => {
                1 + gamma_bits(*value) + gamma_bits(*tiebreak as u64)
            }
            MisMsg::Joined => 1,
        }
    }
    fn max_bits(p: &WireParams) -> Option<u64> {
        Some(1 + gamma_max_bits(draw_domain(p.n)) + gamma_max_bits(p.n))
    }
}

#[derive(Clone, Copy)]
struct S {
    state: MisState,
    /// Random draw, with the node id as a deterministic tie-breaker.
    draw: (u64, u32),
}

/// Computes a maximal independent set with Luby's algorithm on the
/// message-passing engine.
///
/// Per iteration (2 LOCAL rounds): every undecided node draws a fresh
/// random value from its private stream and broadcasts it; strict local
/// minima join the set; new members announce themselves and their
/// neighbors drop out. Terminates in `O(log n)` iterations w.h.p.; a
/// deterministic greedy cleanup guarantees termination in the
/// (vanishing-probability) event the iteration cap is hit.
///
/// Returns the membership mask.
///
/// # Example
///
/// ```
/// use delta_coloring::mis::{is_mis, luby_mis};
/// use delta_graphs::generators;
/// use local_model::RoundLedger;
///
/// let g = generators::cycle(10);
/// let mut ledger = RoundLedger::new();
/// let mis = luby_mis(&g, 7, &mut ledger, "mis");
/// assert!(is_mis(&g, &mis));
/// ```
pub fn luby_mis(g: &Graph, seed: u64, ledger: &mut RoundLedger, phase: &str) -> Vec<bool> {
    let engine = local_model::compile(Engine::new(g, seed, |v| S {
        state: MisState::Undecided,
        draw: (0, v.0),
    }));
    let engine = luby_core(engine, ledger, phase);
    // Deterministic cleanup (unreachable w.h.p.): greedily add remaining
    // undecided nodes in id order.
    let mut member: Vec<bool> = engine
        .node_states()
        .iter()
        .map(|s| s.state == MisState::In)
        .collect();
    for v in g.nodes() {
        if engine.node_states()[v.index()].state == MisState::Undecided
            && !g.neighbors(v).iter().any(|&w| member[w.index()])
        {
            member[v.index()] = true;
        }
    }
    member
}

/// The Luby iteration, written once against [`RoundDriver`]: the same
/// node program runs on the host engine and on virtual-topology
/// overlays. Returns the driver after the loop so callers can run
/// their topology-appropriate deterministic cleanup.
fn luby_core<DR: RoundDriver<S>>(mut engine: DR, ledger: &mut RoundLedger, phase: &str) -> DR {
    let n = engine.node_count();
    let cap = 8 * ((n as u64).max(2).ilog2() as u64 + 2) + 64;
    let mut iterations = 0;
    while engine
        .node_states()
        .iter()
        .any(|s| s.state == MisState::Undecided)
        && iterations < cap
    {
        iterations += 1;
        // Round 1: undecided nodes draw fresh values (a local
        // computation, free in the LOCAL model) and exchange them;
        // strict local minima join. The draw domain is n³ — O(log n)
        // wire bits. The vendored Lemire reduction is an
        // order-preserving compression of the raw u64 stream, so the
        // decisions match a full-width draw except when two neighbors
        // collide in the n³ domain (~n⁻³ per pair per round) and the id
        // tiebreak picks the other winner — still a valid MIS.
        let domain = draw_domain(n as u64);
        engine.round_step(
            ledger,
            phase,
            |ctx, s: &mut S, out: &mut Outbox<MisMsg>| {
                if s.state == MisState::Undecided {
                    s.draw.0 = ctx.random_below(domain);
                    out.broadcast(MisMsg::Draw {
                        value: s.draw.0,
                        tiebreak: s.draw.1,
                    });
                }
            },
            |_, s, inbox| {
                if s.state != MisState::Undecided {
                    return; // decided nodes skip the O(degree) scan
                }
                let beaten = inbox.iter().any(|&(_, m)| match m {
                    MisMsg::Draw { value, tiebreak } => (value, tiebreak) <= s.draw,
                    MisMsg::Joined => unreachable!("round 1 carries draws only"),
                });
                if !beaten {
                    s.state = MisState::In;
                }
            },
        );
        // Round 2: new members announce; neighbors drop out.
        engine.round_step(
            ledger,
            phase,
            |_, s: &mut S, out: &mut Outbox<MisMsg>| {
                if s.state == MisState::In {
                    out.broadcast(MisMsg::Joined);
                }
            },
            |_, s, inbox| {
                if s.state == MisState::Undecided && !inbox.is_empty() {
                    s.state = MisState::Out;
                }
            },
        );
    }
    engine
}

/// Runs the Luby core on an already-constructed overlay engine and
/// finishes with the greedy cleanup on virtual adjacency. Returns the
/// rank-indexed membership mask.
fn luby_on_overlay<T: VirtualTopology>(
    engine: OverlayEngine<'_, S, T>,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Vec<bool> {
    let engine = luby_core(local_model::compile(engine), ledger, phase);
    let mut member: Vec<bool> = engine
        .node_states()
        .iter()
        .map(|s| s.state == MisState::In)
        .collect();
    // Deterministic cleanup (unreachable w.h.p.), on *virtual*
    // adjacency: greedily add remaining undecided ranks in id order.
    for r in 0..member.len() {
        if engine.node_states()[r].state == MisState::Undecided
            && !engine
                .inner()
                .virtual_neighbors(NodeId::from_index(r))
                .iter()
                .any(|&w| member[w.index()])
        {
            member[r] = true;
        }
    }
    member
}

/// Runs Luby's MIS on the power graph `G^k` **through the host engine**
/// ([`PowerOverlay`]): one virtual round executes as `k` measured relay
/// rounds of `G`, so the ledger is charged the true dilated cost — and
/// nothing is materialized (`power_graph` is only the proptest oracle
/// this execution is proven id-for-id equal to).
///
/// The result is an independent set of `G^k` (pairwise distance `> k` in
/// `G`) that dominates every node within distance `k` — i.e. a
/// `(k+1, k)` ruling set of `G` (Lemma 20 (4) in spirit).
pub fn luby_mis_on_power(
    g: &Graph,
    k: usize,
    seed: u64,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Vec<bool> {
    assert!(k >= 1);
    if k == 1 {
        return luby_mis(g, seed, ledger, phase);
    }
    let engine = OverlayEngine::new(g, PowerOverlay { k }, seed, |v| S {
        state: MisState::Undecided,
        draw: (0, v.0),
    });
    // Every host node is a member, so ranks coincide with host ids.
    luby_on_overlay(engine, ledger, phase)
}

/// Runs Luby's MIS on `(G[S])^k` through the composed
/// `Induced ∘ Power` overlay — the ruling-set substrate for **live
/// subgraphs**: the relay flood is confined to members, so virtual
/// adjacency is "member within distance `k` inside `G[S]`". Returns a
/// host-indexed membership mask (non-members are never selected).
pub fn luby_mis_within_power(
    g: &Graph,
    members: &[bool],
    k: usize,
    seed: u64,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Vec<bool> {
    assert!(k >= 1);
    let topo = InducedOverlay { members }.power(k);
    let engine = OverlayEngine::new(g, topo, seed, |v| S {
        state: MisState::Undecided,
        draw: (0, v.0),
    });
    let rank_mask = luby_on_overlay(engine, ledger, phase);
    local_model::expand_rank_mask(g, &topo, &rank_mask)
}

/// Verifies the MIS properties: independence and maximality.
pub fn is_mis(g: &Graph, member: &[bool]) -> bool {
    let independent = g
        .edges()
        .all(|(u, v)| !(member[u.index()] && member[v.index()]));
    let maximal = g
        .nodes()
        .all(|v| member[v.index()] || g.neighbors(v).iter().any(|&w| member[w.index()]));
    independent && maximal
}

/// Collects the member node ids from a membership mask.
pub fn members(mask: &[bool]) -> Vec<NodeId> {
    mask.iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(i, _)| NodeId::from_index(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_graphs::generators;

    #[test]
    fn mis_on_families() {
        for (i, g) in [
            generators::cycle(20),
            generators::torus(6, 6),
            generators::random_regular(300, 4, 5),
            generators::complete(7),
            generators::star(9),
            generators::path(2),
        ]
        .iter()
        .enumerate()
        {
            let mut ledger = RoundLedger::new();
            let m = luby_mis(g, i as u64, &mut ledger, "mis");
            assert!(is_mis(g, &m), "family {i}");
            assert!(ledger.total() > 0);
        }
    }

    #[test]
    fn mis_round_count_logarithmic() {
        let g = generators::random_regular(2000, 6, 1);
        let mut ledger = RoundLedger::new();
        let m = luby_mis(&g, 3, &mut ledger, "mis");
        assert!(is_mis(&g, &m));
        assert!(ledger.total() < 120, "rounds {}", ledger.total());
    }

    #[test]
    fn mis_on_power_graph_separation() {
        let g = generators::cycle(30);
        let mut ledger = RoundLedger::new();
        let m = luby_mis_on_power(&g, 3, 9, &mut ledger, "ruling");
        let sel = members(&m);
        assert!(!sel.is_empty());
        // Pairwise distance > 3 on the cycle.
        for (i, &u) in sel.iter().enumerate() {
            for &v in &sel[i + 1..] {
                let d = delta_graphs::bfs::distances(&g, u)[v.index()];
                assert!(d > 3, "{u} and {v} at distance {d}");
            }
        }
        // Domination within 3.
        let dist = delta_graphs::bfs::multi_source_distances(&g, &sel);
        assert!(dist.iter().all(|&d| d <= 3));
    }

    #[test]
    fn empty_graph_mis() {
        let g = Graph::empty(5);
        let mut ledger = RoundLedger::new();
        let m = luby_mis(&g, 0, &mut ledger, "mis");
        assert!(m.iter().all(|&x| x));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::random_regular(200, 4, 8);
        let mut l1 = RoundLedger::new();
        let mut l2 = RoundLedger::new();
        let a = luby_mis(&g, 5, &mut l1, "mis");
        let b = luby_mis(&g, 5, &mut l2, "mis");
        assert_eq!(a, b);
        assert_eq!(l1.total(), l2.total());
    }
}
