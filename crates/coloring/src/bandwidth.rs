//! CONGEST-feasibility classification of every protocol substrate.
//!
//! The paper's algorithms are stated in the LOCAL model (unbounded
//! messages); the interesting scalability question is which substrates
//! already fit the CONGEST regime of `O(log n)` bits per edge per
//! round (the KMW lower-bound setting). Every protocol message type in
//! this crate implements [`WireCodec`]; this module evaluates each
//! type's [`WireCodec::max_bits`] bound against the operational budget
//! [`local_model::congest_budget`] (`16·⌈log₂ n⌉` bits) and labels the
//! substrate:
//!
//! * [`BandwidthClass::Congest`] — every message fits the budget: the
//!   substrate would run unchanged under CONGEST;
//! * [`BandwidthClass::LocalOnly`] — some message family is unbounded
//!   (ball relays, floods) or over budget: a CONGEST port would need
//!   message splitting over extra rounds.
//!
//! The experiments binary prints this table next to the *measured*
//! per-edge loads the engine accounts at run time
//! ([`local_model::MessageStats`]).

use crate::brooks::BrooksMsg;
use crate::decomp::DecompMsg;
use crate::delta::det::DetMsg;
use crate::delta::netdecomp::NetDecompMsg;
use crate::delta::rand::RandMsg;
use crate::delta::slocal::SlocalMsg;
use crate::gallai::GallaiMsg;
use crate::layering::LayerMsg;
use crate::linial::LinialMsg;
use crate::list_coloring::LcMsg;
use crate::marking::MkMsg;
use crate::mis::MisMsg;
use crate::reduce::ReduceMsg;
use crate::ruling::RulingMsg;
use local_model::{congest_budget, WireCodec, WireParams};

/// Which bandwidth regime a substrate's wire format fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandwidthClass {
    /// Every message fits the `O(log n)` per-edge-per-round budget.
    Congest,
    /// Unbounded (or over-budget) messages: LOCAL-model only.
    LocalOnly,
}

impl std::fmt::Display for BandwidthClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BandwidthClass::Congest => write!(f, "CONGEST(O(log n))"),
            BandwidthClass::LocalOnly => write!(f, "LOCAL-only"),
        }
    }
}

/// One substrate's classification at concrete graph parameters.
#[derive(Debug, Clone)]
pub struct SubstrateBandwidth {
    /// Substrate (module) name.
    pub name: &'static str,
    /// Message type name.
    pub message: &'static str,
    /// `max_bits` at the given parameters; `None` = unbounded.
    pub max_bits: Option<u64>,
    /// The verdict against [`congest_budget`].
    pub class: BandwidthClass,
    /// Why (one line).
    pub note: &'static str,
}

fn row<M: WireCodec>(
    name: &'static str,
    message: &'static str,
    p: &WireParams,
    note: &'static str,
) -> SubstrateBandwidth {
    let max_bits = M::max_bits(p);
    let class = match max_bits {
        Some(b) if b <= congest_budget(p.n) => BandwidthClass::Congest,
        _ => BandwidthClass::LocalOnly,
    };
    SubstrateBandwidth {
        name,
        message,
        max_bits,
        class,
        note,
    }
}

/// Classifies every protocol substrate at the given graph parameters.
/// Rows are ordered roughly bottom-up: primitives first, the headline
/// drivers last.
pub fn classify(p: &WireParams) -> Vec<SubstrateBandwidth> {
    // Color-class reduction consumes Linial's O(Δ²) coloring, so its
    // palette is the Linial bound, not Δ+1.
    let reduce_params =
        p.with_palette(crate::linial::linial_color_bound(p.max_degree as usize) as u64);
    vec![
        row::<LinialMsg>(
            "linial",
            "LinialMsg",
            p,
            "one gamma-coded color < max(n, q0^2)",
        ),
        row::<ReduceMsg>(
            "reduce",
            "ReduceMsg",
            &reduce_params,
            "one gamma-coded color < Linial bound",
        ),
        row::<MisMsg>("mis", "MisMsg", p, "n^3-domain draw + id tiebreak"),
        row::<LcMsg>("list_coloring", "LcMsg", p, "tag + gamma-coded color"),
        row::<MkMsg>(
            "marking",
            "MkMsg",
            p,
            "backoff flood carries Theta(Delta^b) ids",
        ),
        row::<RulingMsg>(
            "ruling",
            "RulingMsg",
            p,
            "power-graph relays batch Delta^(alpha-2) messages",
        ),
        row::<GallaiMsg>(
            "gallai",
            "GallaiMsg",
            p,
            "ball relays carry Theta(Delta^r) edges",
        ),
        row::<BrooksMsg>(
            "brooks",
            "BrooksMsg",
            p,
            "endpoint probe collects a log-radius ball",
        ),
        row::<LayerMsg>("layering", "LayerMsg", p, "one gamma-coded BFS layer index"),
        row::<DecompMsg>(
            "decomp",
            "DecompMsg",
            p,
            "fixed-point key + gamma-coded center",
        ),
        row::<RandMsg>(
            "delta/rand",
            "RandMsg",
            p,
            "inherits DCC detection + marking flood",
        ),
        row::<DetMsg>(
            "delta/det",
            "DetMsg",
            p,
            "inherits power-graph ruling + repairs",
        ),
        row::<NetDecompMsg>(
            "delta/netdecomp",
            "NetDecompMsg",
            p,
            "inherits separation blocking + repairs",
        ),
        row::<SlocalMsg>(
            "delta/slocal",
            "SlocalMsg",
            p,
            "repairs rewrite whole balls",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes_at(n: u64, delta: u64) -> Vec<(&'static str, BandwidthClass)> {
        let p = WireParams {
            n,
            max_degree: delta,
            palette: delta + 1,
        };
        classify(&p)
            .into_iter()
            .map(|r| (r.name, r.class))
            .collect()
    }

    #[test]
    fn substrates_split_as_documented() {
        for (n, delta) in [(1 << 10, 4), (1 << 14, 4), (1 << 20, 8), (1 << 14, 16)] {
            let classes = classes_at(n, delta);
            let class_of = |name: &str| {
                classes
                    .iter()
                    .find(|(r, _)| *r == name)
                    .map(|&(_, c)| c)
                    .expect("registered substrate")
            };
            // CONGEST-feasible primitives.
            for name in [
                "linial",
                "reduce",
                "mis",
                "list_coloring",
                "layering",
                "decomp",
            ] {
                assert_eq!(
                    class_of(name),
                    BandwidthClass::Congest,
                    "{name} at n={n}, delta={delta}"
                );
            }
            // Unbounded wire formats.
            for name in [
                "marking",
                "ruling",
                "gallai",
                "brooks",
                "delta/rand",
                "delta/det",
                "delta/netdecomp",
                "delta/slocal",
            ] {
                assert_eq!(
                    class_of(name),
                    BandwidthClass::LocalOnly,
                    "{name} at n={n}, delta={delta}"
                );
            }
        }
    }

    #[test]
    fn registry_covers_all_fourteen_substrates() {
        let p = WireParams {
            n: 1 << 12,
            max_degree: 4,
            palette: 5,
        };
        let rows = classify(&p);
        assert_eq!(rows.len(), 14);
        // Bounded rows really are within budget; unbounded rows say so.
        for r in &rows {
            match r.max_bits {
                Some(b) => assert!(
                    (r.class == BandwidthClass::Congest) == (b <= congest_budget(p.n)),
                    "{}: bound {b} vs budget {}",
                    r.name,
                    congest_budget(p.n)
                ),
                None => assert_eq!(r.class, BandwidthClass::LocalOnly, "{}", r.name),
            }
        }
    }

    #[test]
    fn bit_halving_ruling_case_is_congest_feasible() {
        // The alpha = 2 carve-out: candidate announcements alone fit.
        let p = WireParams {
            n: 1 << 16,
            max_degree: 4,
            palette: 5,
        };
        assert!(RulingMsg::candidate_max_bits(&p) <= congest_budget(p.n));
    }
}
