//! CONGEST-feasibility classification of every protocol substrate,
//! plus how each substrate *executes* — through the engine (rounds and
//! per-edge bits measured) or as a charged central simulation.
//!
//! The paper's algorithms are stated in the LOCAL model (unbounded
//! messages); the interesting scalability question is which substrates
//! already fit the CONGEST regime of `O(log n)` bits per edge per
//! round (the KMW lower-bound setting). Every protocol message type in
//! this crate implements [`WireCodec`]; this module evaluates each
//! type's [`WireCodec::max_bits`] bound against the operational budget
//! [`local_model::congest_budget`] (`16·⌈log₂ n⌉` bits) and labels the
//! substrate:
//!
//! * [`BandwidthClass::Congest`] — every message fits the budget: the
//!   substrate would run unchanged under CONGEST;
//! * [`BandwidthClass::LocalOnly`] — some message family is unbounded
//!   (ball relays, floods) or over budget: a CONGEST port would need
//!   message splitting over extra rounds.
//!
//! Orthogonally, [`Measurement`] records whether the substrate's
//! rounds actually run through [`local_model::Engine::step`] — in
//! which case its bandwidth numbers in the experiment tables are
//! **measured** wire-exact loads, not static estimates. Since the
//! ball-collection subsystem landed ([`local_model::ball`]), the
//! ruling-set, marking, and DCC-detection phases execute
//! engine-backed; only the centrally simulated remainders (power-graph
//! Luby, layer BFS waves, MPX decomposition, the Brooks token walk and
//! its deep probes) still charge estimated rounds.
//!
//! [`Execution`] answers the CONGEST question operationally, now that
//! [`local_model::congest`] exists: every engine-backed substrate
//! constructs its driver through [`local_model::compile`], so under an
//! [`local_model::enforce_congest`] guard its rounds run **enforced** —
//! oversized payloads fragmented into budget-sized chunks over honest
//! dilated wire rounds ([`Execution::CongestEnforced`]); substrates
//! whose wire format already fits the budget run under the same guard
//! without dilation ([`Execution::CongestFeasible`]); only the
//! overlay/shard materialization layers themselves — whose envelopes
//! *are* the relay mechanism — stay LOCAL-level accounting
//! ([`Execution::Local`]).
//!
//! Each row also says what the substrate emits into an attached trace
//! ([`local_model::Tracer`]): engine-backed rounds produce enriched
//! round records (wall time, delivery counts, inbox peaks); central
//! simulations produce bare charged records; the overlay substrates
//! additionally emit **level-tagged virtual-round records** (`G^k` /
//! `G[S]`) distinguishing a virtual round from the host relay rounds it
//! compiles to, and the sharded boundary adds per-shard block/bit
//! columns to every round record.
//!
//! The experiments binary prints this table next to the *measured*
//! per-edge loads the engine accounts at run time
//! ([`local_model::MessageStats`]).

use crate::brooks::BrooksMsg;
use crate::decomp::DecompMsg;
use crate::delta::det::DetMsg;
use crate::delta::netdecomp::NetDecompMsg;
use crate::delta::rand::RandMsg;
use crate::delta::slocal::SlocalMsg;
use crate::gallai::GallaiMsg;
use crate::layering::LayerMsg;
use crate::linial::LinialMsg;
use crate::list_coloring::LcMsg;
use crate::mis::MisMsg;
use crate::reduce::ReduceMsg;
use crate::ruling::RulingMsg;
use local_model::{
    congest_budget, BallMsg, OverlayEnvelope, OverlayRelay, ReachMsg, RelayItem, WireCodec,
    WireParams,
};

/// Which bandwidth regime a substrate's wire format fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandwidthClass {
    /// Every message fits the `O(log n)` per-edge-per-round budget.
    Congest,
    /// Unbounded (or over-budget) messages: LOCAL-model only.
    LocalOnly,
}

impl std::fmt::Display for BandwidthClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BandwidthClass::Congest => write!(f, "CONGEST(O(log n))"),
            BandwidthClass::LocalOnly => write!(f, "LOCAL-only"),
        }
    }
}

/// How a substrate's round/bit numbers are obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measurement {
    /// Every round runs through [`local_model::Engine::step`]: round
    /// counts and per-edge bit loads are measured, wire-exact.
    Engine,
    /// Some phases run engine-backed (measured), the rest are charged
    /// central simulations.
    Mixed,
    /// Centrally simulated with explicit round charges; bandwidth
    /// numbers are declared bounds, not measurements.
    Central,
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Measurement::Engine => write!(f, "engine (measured)"),
            Measurement::Mixed => write!(f, "mixed"),
            Measurement::Central => write!(f, "central (charged)"),
        }
    }
}

/// How a substrate behaves under a [`local_model::enforce_congest`]
/// guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Execution {
    /// The substrate *is* a LOCAL-level materialization mechanism
    /// (overlay relay envelopes, sharded boundary blocks): its traffic
    /// is the compiled form of some virtual round, accounted at its
    /// own level, not budget-enforced itself.
    Local,
    /// Engine-backed rounds constructed through
    /// [`local_model::compile`] with an over-budget wire format: under
    /// enforcement, payloads fragment into budget-sized chunks over
    /// dilated honest wire rounds, and the run completes with zero
    /// `congest_violations`.
    CongestEnforced,
    /// Wire format already fits [`congest_budget`]: the substrate runs
    /// under enforcement unchanged (dilation factor 1).
    CongestFeasible,
}

impl std::fmt::Display for Execution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Execution::Local => write!(f, "local"),
            Execution::CongestEnforced => write!(f, "congest-enforced"),
            Execution::CongestFeasible => write!(f, "congest-feasible"),
        }
    }
}

/// One substrate's classification at concrete graph parameters.
#[derive(Debug, Clone)]
pub struct SubstrateBandwidth {
    /// Substrate (module) name.
    pub name: &'static str,
    /// Message type name.
    pub message: &'static str,
    /// `max_bits` at the given parameters; `None` = unbounded.
    pub max_bits: Option<u64>,
    /// The verdict against [`congest_budget`].
    pub class: BandwidthClass,
    /// How the substrate's rounds are measured (engine vs charged).
    pub measurement: Measurement,
    /// How the substrate behaves under CONGEST enforcement.
    pub execution: Execution,
    /// What the substrate emits into an attached trace
    /// ([`local_model::Tracer`]): derived from [`Measurement`] by
    /// default; the overlay substrates override it with their
    /// level-tagged virtual-round streams and the sharded boundary
    /// with its per-shard round columns.
    pub trace: &'static str,
    /// Why (one line).
    pub note: &'static str,
}

/// The default trace emission for a measurement style: engine rounds
/// produce enriched round records, central simulations bare charges.
fn default_trace(measurement: Measurement) -> &'static str {
    match measurement {
        Measurement::Engine => "rounds",
        Measurement::Mixed => "rounds+charges",
        Measurement::Central => "charges",
    }
}

/// Overrides the trace column for substrates whose streams carry more
/// than the measurement default (level tags, per-shard columns).
fn with_trace(mut r: SubstrateBandwidth, trace: &'static str) -> SubstrateBandwidth {
    r.trace = trace;
    r
}

/// Overrides the execution column for the materialization-layer rows
/// (relay envelopes, boundary blocks) that are never budget-enforced
/// themselves.
fn local_level(mut r: SubstrateBandwidth) -> SubstrateBandwidth {
    r.execution = Execution::Local;
    r
}

fn row<M: WireCodec>(
    name: &'static str,
    message: &'static str,
    p: &WireParams,
    measurement: Measurement,
    note: &'static str,
) -> SubstrateBandwidth {
    let max_bits = M::max_bits(p);
    let class = match max_bits {
        Some(b) if b <= congest_budget(p.n) => BandwidthClass::Congest,
        _ => BandwidthClass::LocalOnly,
    };
    // Every protocol substrate builds its drivers through
    // `local_model::compile`, so a within-budget format runs under
    // enforcement unchanged and an over-budget one runs fragmented;
    // only the materialization layers override this to `Local`.
    let execution = match class {
        BandwidthClass::Congest => Execution::CongestFeasible,
        BandwidthClass::LocalOnly => Execution::CongestEnforced,
    };
    SubstrateBandwidth {
        name,
        message,
        max_bits,
        class,
        measurement,
        execution,
        trace: default_trace(measurement),
        note,
    }
}

/// Classifies every protocol substrate at the given graph parameters.
/// Rows are ordered roughly bottom-up: the ball-collection subsystem
/// and the primitives first, the headline drivers last.
pub fn classify(p: &WireParams) -> Vec<SubstrateBandwidth> {
    // Color-class reduction consumes Linial's O(Δ²) coloring, so its
    // palette is the Linial bound, not Δ+1.
    let reduce_params =
        p.with_palette(crate::linial::linial_color_bound(p.max_degree as usize) as u64);
    vec![
        row::<BallMsg<()>>(
            "ball/collect",
            "BallMsg",
            p,
            Measurement::Engine,
            "radius-r certificate flood: Theta(Delta^r) adjacency lists",
        ),
        row::<ReachMsg<()>>(
            "ball/reach",
            "ReachMsg",
            p,
            Measurement::Engine,
            "membership flood: batches every source crossing an edge",
        ),
        row::<RelayItem<()>>(
            "overlay/relay-item",
            "RelayItem",
            p,
            Measurement::Engine,
            "per relayed source: origin id + hop TTL + payload",
        ),
        local_level(with_trace(
            row::<OverlayRelay<()>>(
                "overlay/relay",
                "OverlayRelay",
                p,
                Measurement::Engine,
                "G^k round compiled to k relay rounds: batches Theta(Delta^(k-1)) items",
            ),
            "rounds+vrounds(G^k)",
        )),
        local_level(with_trace(
            row::<OverlayEnvelope<()>>(
                "overlay/induced",
                "OverlayEnvelope",
                p,
                Measurement::Engine,
                "G[S] round on the host edge: bcast + unbounded directed list",
            ),
            "rounds+vrounds(G[S])",
        )),
        // The sharded engine's boundary block is not a per-edge message
        // but the batched shard-pair envelope (gamma section counts,
        // gamma-coded sender/arc offsets, payloads), so it has no
        // per-message bound; its realized wire bits are metered per
        // block by `BoundaryStats`.
        SubstrateBandwidth {
            name: "shard/boundary",
            message: "BoundaryBlock",
            max_bits: None,
            class: BandwidthClass::LocalOnly,
            measurement: Measurement::Engine,
            execution: Execution::Local,
            trace: "rounds+shard-cols",
            note: "batched block per shard pair per round: all cross-shard traffic, wire-exact",
        },
        row::<LinialMsg>(
            "linial",
            "LinialMsg",
            p,
            Measurement::Engine,
            "one gamma-coded color < max(n, q0^2)",
        ),
        row::<ReduceMsg>(
            "reduce",
            "ReduceMsg",
            &reduce_params,
            Measurement::Engine,
            "one gamma-coded color < Linial bound",
        ),
        row::<MisMsg>(
            "mis",
            "MisMsg",
            p,
            Measurement::Engine,
            "n^3-domain draw + id tiebreak",
        ),
        row::<LcMsg>(
            "list_coloring",
            "LcMsg",
            p,
            Measurement::Engine,
            "tag + gamma-coded color",
        ),
        row::<ReachMsg<()>>(
            "marking",
            "ReachMsg + MkMsg",
            p,
            Measurement::Engine,
            "backoff reach-flood of Theta(Delta^b) ids; picks via 2-balls",
        ),
        row::<RulingMsg>(
            "ruling",
            "RulingMsg",
            p,
            Measurement::Engine,
            "bit-halving reach-floods + Luby on the G^k overlay, both measured",
        ),
        row::<GallaiMsg>(
            "gallai",
            "GallaiMsg",
            p,
            Measurement::Engine,
            "DCC detection collects radius-r balls: Theta(Delta^r) edges",
        ),
        row::<BrooksMsg>(
            "brooks",
            "BrooksMsg",
            p,
            Measurement::Mixed,
            "first probe is an engine 2-ball; deep probes + walk central",
        ),
        row::<BrooksMsg>(
            "repair",
            "Color + BrooksMsg",
            p,
            Measurement::Mixed,
            "detection exchanges colors; healing inherits the Brooks ball probes",
        ),
        row::<LayerMsg>(
            "layering",
            "LayerMsg",
            p,
            Measurement::Mixed,
            "todo-subgraph coloring on the induced overlay; BFS waves central",
        ),
        row::<DecompMsg>(
            "decomp",
            "DecompMsg",
            p,
            Measurement::Central,
            "fixed-point key + gamma-coded center",
        ),
        row::<RandMsg>(
            "delta/rand",
            "RandMsg",
            p,
            Measurement::Mixed,
            "inherits DCC detection + marking flood",
        ),
        row::<DetMsg>(
            "delta/det",
            "DetMsg",
            p,
            Measurement::Mixed,
            "inherits power-graph ruling + repairs",
        ),
        row::<NetDecompMsg>(
            "delta/netdecomp",
            "NetDecompMsg",
            p,
            Measurement::Mixed,
            "inherits separation blocking + repairs",
        ),
        row::<SlocalMsg>(
            "delta/slocal",
            "SlocalMsg",
            p,
            Measurement::Mixed,
            "repairs rewrite whole balls",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marking::MkMsg;

    fn classes_at(n: u64, delta: u64) -> Vec<(&'static str, BandwidthClass)> {
        let p = WireParams {
            n,
            max_degree: delta,
            palette: delta + 1,
        };
        classify(&p)
            .into_iter()
            .map(|r| (r.name, r.class))
            .collect()
    }

    #[test]
    fn substrates_split_as_documented() {
        for (n, delta) in [(1 << 10, 4), (1 << 14, 4), (1 << 20, 8), (1 << 14, 16)] {
            let classes = classes_at(n, delta);
            let class_of = |name: &str| {
                classes
                    .iter()
                    .find(|(r, _)| *r == name)
                    .map(|&(_, c)| c)
                    .expect("registered substrate")
            };
            // CONGEST-feasible primitives (the overlay relay's per-item
            // envelope is bounded; its batched relays are not).
            for name in [
                "linial",
                "reduce",
                "mis",
                "list_coloring",
                "layering",
                "decomp",
                "overlay/relay-item",
            ] {
                assert_eq!(
                    class_of(name),
                    BandwidthClass::Congest,
                    "{name} at n={n}, delta={delta}"
                );
            }
            // Unbounded wire formats: the ball-collection relays and
            // everything built on them.
            for name in [
                "ball/collect",
                "ball/reach",
                "overlay/relay",
                "overlay/induced",
                "marking",
                "ruling",
                "gallai",
                "brooks",
                "repair",
                "delta/rand",
                "delta/det",
                "delta/netdecomp",
                "delta/slocal",
            ] {
                assert_eq!(
                    class_of(name),
                    BandwidthClass::LocalOnly,
                    "{name} at n={n}, delta={delta}"
                );
            }
        }
    }

    #[test]
    fn registry_covers_all_twenty_one_substrates() {
        let p = WireParams {
            n: 1 << 12,
            max_degree: 4,
            palette: 5,
        };
        let rows = classify(&p);
        assert_eq!(rows.len(), 21);
        // Bounded rows really are within budget; unbounded rows say so.
        for r in &rows {
            match r.max_bits {
                Some(b) => assert!(
                    (r.class == BandwidthClass::Congest) == (b <= congest_budget(p.n)),
                    "{}: bound {b} vs budget {}",
                    r.name,
                    congest_budget(p.n)
                ),
                None => assert_eq!(r.class, BandwidthClass::LocalOnly, "{}", r.name),
            }
        }
    }

    #[test]
    fn engine_backed_substrates_are_labeled_measured() {
        let p = WireParams {
            n: 1 << 12,
            max_degree: 4,
            palette: 5,
        };
        let exec_of = |name: &str| {
            classify(&p)
                .into_iter()
                .find(|r| r.name == name)
                .map(|r| r.measurement)
                .expect("registered substrate")
        };
        // The ball subsystem and the virtual-topology overlay made
        // these phases real message-passing programs: their loads in
        // the experiment tables are measured. Since the overlay landed,
        // ruling (Luby on the G^k overlay) is fully engine-executed.
        for name in [
            "ball/collect",
            "ball/reach",
            "overlay/relay-item",
            "overlay/relay",
            "overlay/induced",
            "linial",
            "reduce",
            "mis",
            "list_coloring",
            "marking",
            "ruling",
            "gallai",
        ] {
            assert_eq!(exec_of(name), Measurement::Engine, "{name}");
        }
        // Layering's todo subgraphs now color through the induced
        // overlay, but its BFS layer waves stay charged central
        // simulations — mixed, like the drivers that inherit them.
        for name in ["layering", "brooks", "repair", "delta/rand", "delta/det"] {
            assert_eq!(exec_of(name), Measurement::Mixed, "{name}");
        }
        assert_eq!(exec_of("decomp"), Measurement::Central, "decomp");
    }

    #[test]
    fn execution_column_is_three_state_and_matches_enforcement() {
        let p = WireParams {
            n: 1 << 12,
            max_degree: 4,
            palette: 5,
        };
        let rows = classify(&p);
        let execution_of = |name: &str| {
            rows.iter()
                .find(|r| r.name == name)
                .map(|r| r.execution)
                .expect("registered substrate")
        };
        // Over-budget wire formats built through `local_model::compile`
        // run fragmented under an `enforce_congest` guard — including
        // the marking/ruling/gallai substrates and every headline
        // driver, which is what lets the Δ-coloring experiment finish
        // with zero congest_violations.
        for name in [
            "ball/collect",
            "ball/reach",
            "marking",
            "ruling",
            "gallai",
            "brooks",
            "repair",
            "delta/rand",
            "delta/det",
            "delta/netdecomp",
            "delta/slocal",
        ] {
            assert_eq!(execution_of(name), Execution::CongestEnforced, "{name}");
        }
        // Within-budget formats need no fragmentation: under the same
        // guard they run with dilation factor 1.
        for name in [
            "overlay/relay-item",
            "linial",
            "reduce",
            "mis",
            "list_coloring",
            "layering",
            "decomp",
        ] {
            assert_eq!(execution_of(name), Execution::CongestFeasible, "{name}");
        }
        // The materialization layers are the relay mechanism itself,
        // never budget-enforced.
        for name in ["overlay/relay", "overlay/induced", "shard/boundary"] {
            assert_eq!(execution_of(name), Execution::Local, "{name}");
        }
        // Every row carries some execution verdict (three-state, no
        // fourth option smuggled in through literals).
        assert_eq!(
            rows.len(),
            11 + 7 + 3,
            "execution partition covers the registry"
        );
    }

    #[test]
    fn trace_column_tags_the_level_emitters() {
        let p = WireParams {
            n: 1 << 12,
            max_degree: 4,
            palette: 5,
        };
        let trace_of = |name: &str| {
            classify(&p)
                .into_iter()
                .find(|r| r.name == name)
                .map(|r| r.trace)
                .expect("registered substrate")
        };
        // The overlay substrates emit level-tagged virtual-round
        // records; the sharded boundary adds per-shard columns; plain
        // engine substrates emit enriched round records; central
        // simulations only charged records.
        assert_eq!(trace_of("overlay/relay"), "rounds+vrounds(G^k)");
        assert_eq!(trace_of("overlay/induced"), "rounds+vrounds(G[S])");
        assert_eq!(trace_of("shard/boundary"), "rounds+shard-cols");
        assert_eq!(trace_of("linial"), "rounds");
        assert_eq!(trace_of("brooks"), "rounds+charges");
        assert_eq!(trace_of("decomp"), "charges");
    }

    #[test]
    fn bit_halving_ruling_case_is_congest_feasible() {
        // The alpha = 2 carve-out: candidate announcements alone fit.
        let p = WireParams {
            n: 1 << 16,
            max_degree: 4,
            palette: 5,
        };
        assert!(RulingMsg::candidate_max_bits(&p) <= congest_budget(p.n));
    }

    #[test]
    fn marking_control_messages_are_bounded() {
        // The propose/claim/accept placement rounds individually fit
        // CONGEST; the substrate is LOCAL-only because of the flood.
        let p = WireParams {
            n: 1 << 16,
            max_degree: 4,
            palette: 5,
        };
        assert!(MkMsg::max_bits(&p).unwrap() <= congest_budget(p.n));
    }
}
