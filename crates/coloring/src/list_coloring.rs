//! Distributed `(deg+1)`-list coloring.
//!
//! Every node has a color list with `|L(v)| >= deg(v) + 1`; the goal is
//! a proper coloring from the lists. This is the workhorse the layering
//! technique calls once per layer (Sections 3 and 4.1 of the paper).
//!
//! Two solvers are provided (see DESIGN.md §4 for the substitution
//! rationale):
//!
//! * [`list_color_randomized`] — each round, every uncolored node
//!   proposes a uniformly random available color and keeps it unless a
//!   conflicting neighbor with smaller id proposed the same color.
//!   `O(log n)` rounds w.h.p., with guaranteed termination (the minimum
//!   uncolored id always makes progress). Stand-in for Theorem 19
//!   \[Gha16\].
//! * [`list_color_deterministic`] — iterate over the classes of a
//!   proper schedule coloring (from Linial's algorithm): class members
//!   are independent, so each class can pick greedily in one round.
//!   `O(Δ² + log* n)` rounds. Stand-in for Theorem 18 \[FHK16+BEG17\].

use crate::palette::{Color, ColoringError, Lists, PartialColoring};
use delta_graphs::{Graph, NodeId};
use local_model::wire::gamma_max_bits;
use local_model::{
    BitReader, BitWriter, Engine, InducedOverlay, Outbox, OverlayEngine, RoundDriver, RoundLedger,
    WireCodec, WireParams,
};

/// Which list-coloring engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListColorMethod {
    /// Randomized trial coloring (Theorem 19 stand-in).
    Randomized,
    /// Deterministic schedule-class iteration (Theorem 18 stand-in).
    Deterministic,
}

/// Solves a `(deg+1)`-list-coloring instance on `g` with the chosen
/// method, starting from `partial` (already-colored nodes are kept and
/// constrain their neighbors).
///
/// # Errors
///
/// Returns [`ColoringError::Unsolvable`] if some node runs out of
/// available colors — impossible when the `(deg+1)` precondition holds
/// on the uncolored subgraph, so an error indicates a malformed
/// instance.
pub fn list_color(
    g: &Graph,
    lists: &Lists,
    partial: PartialColoring,
    method: ListColorMethod,
    seed: u64,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Result<PartialColoring, ColoringError> {
    match method {
        ListColorMethod::Randomized => {
            list_color_randomized(g, lists, partial, seed, ledger, phase)
        }
        ListColorMethod::Deterministic => {
            list_color_deterministic(g, lists, partial, ledger, phase)
        }
    }
}

/// Per-node state of the randomized trial-coloring node program.
#[derive(Debug, Clone)]
struct LcState {
    /// Final color, once kept.
    color: Option<Color>,
    /// Whether `color` has been broadcast to the neighbors yet.
    announced: bool,
    /// This round's proposal (redrawn whenever it fails).
    proposal: Option<Color>,
    /// Colors announced by neighbors so far (sorted).
    used: Vec<Color>,
    /// Set when the available list empties: unsolvable instance.
    stuck: bool,
}

/// Messages of the randomized trial-coloring node program. One tag bit
/// plus one gamma-coded color — `O(log palette)` bits, so the
/// substrate is CONGEST-feasible whenever the lists are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LcMsg {
    /// "I try to take this color this round."
    Propose(Color),
    /// "I permanently hold this color."
    Colored(Color),
}

impl WireCodec for LcMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            LcMsg::Propose(c) => {
                w.write_bool(false);
                c.encode(w);
            }
            LcMsg::Colored(c) => {
                w.write_bool(true);
                c.encode(w);
            }
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        let colored = r.read_bool()?;
        let c = Color::decode(r)?;
        Some(if colored {
            LcMsg::Colored(c)
        } else {
            LcMsg::Propose(c)
        })
    }
    fn encoded_bits(&self) -> u64 {
        let (LcMsg::Propose(c) | LcMsg::Colored(c)) = self;
        1 + c.encoded_bits()
    }
    fn max_bits(p: &WireParams) -> Option<u64> {
        Some(1 + gamma_max_bits(p.palette))
    }
}

/// Randomized trial list coloring on the message-passing engine; see
/// module docs.
///
/// One engine round per trial: uncolored nodes broadcast a proposal
/// drawn uniformly from their available colors (list minus every color
/// a neighbor has announced); a proposal survives unless a smaller-id
/// neighbor proposed the same color or a neighbor announced it this
/// very round. Keepers announce their color in the next round. At least
/// one node is colored every two rounds, so the `4n + 16` round cap is
/// only reachable on malformed instances.
///
/// # Errors
///
/// [`ColoringError::Unsolvable`] when a node's available list empties
/// (malformed instance).
pub fn list_color_randomized(
    g: &Graph,
    lists: &Lists,
    coloring: PartialColoring,
    seed: u64,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Result<PartialColoring, ColoringError> {
    if coloring.uncolored().next().is_none() {
        return Ok(coloring);
    }
    let engine = local_model::compile(Engine::new(g, seed, |v| LcState {
        color: coloring.get(v),
        announced: false,
        proposal: None,
        used: Vec::new(),
        stuck: false,
    }));
    let out = list_color_randomized_core(engine, lists, coloring, ledger, phase)?;
    debug_assert!(out.validate_proper(g).is_ok());
    Ok(out)
}

/// [`list_color_randomized`] on the **induced subgraph** `G[members]`,
/// executed through the `InducedOverlay` on the host engine: the trial
/// rounds are real host rounds in which non-members stay silent. Ids
/// (`lists`, `coloring`, the result) live in the member-rank space —
/// identical to a materialized `g.induced(members)` run. This is how
/// the layering technique colors its per-layer todo subgraphs without
/// materializing them.
pub fn list_color_randomized_within(
    g: &Graph,
    members: &[bool],
    lists: &Lists,
    coloring: PartialColoring,
    seed: u64,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Result<PartialColoring, ColoringError> {
    if coloring.uncolored().next().is_none() {
        return Ok(coloring);
    }
    let engine = local_model::compile(OverlayEngine::new(
        g,
        InducedOverlay { members },
        seed,
        |r| LcState {
            color: coloring.get(r),
            announced: false,
            proposal: None,
            used: Vec::new(),
            stuck: false,
        },
    ));
    list_color_randomized_core(engine, lists, coloring, ledger, phase)
}

/// The trial-coloring loop, generic over the round driver.
fn list_color_randomized_core<DR: RoundDriver<LcState>>(
    mut engine: DR,
    lists: &Lists,
    mut coloring: PartialColoring,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Result<PartialColoring, ColoringError> {
    let cap = 4 * engine.node_count() as u64 + 16;
    let mut rounds = 0u64;
    while engine.node_states().iter().any(|s| s.color.is_none()) {
        if rounds >= cap {
            return Err(ColoringError::Unsolvable {
                context: "randomized list coloring exceeded round cap".into(),
            });
        }
        rounds += 1;
        engine.round_step(
            ledger,
            phase,
            |ctx, s: &mut LcState, out: &mut Outbox<LcMsg>| {
                if let Some(c) = s.color {
                    if !s.announced {
                        out.broadcast(LcMsg::Colored(c));
                        s.announced = true;
                    }
                    return;
                }
                if s.proposal.is_none() {
                    let avail: Vec<Color> = lists
                        .of(ctx.id)
                        .iter()
                        .copied()
                        .filter(|c| s.used.binary_search(c).is_err())
                        .collect();
                    if avail.is_empty() {
                        s.stuck = true;
                        return;
                    }
                    s.proposal = Some(avail[ctx.random_below(avail.len() as u64) as usize]);
                }
                out.broadcast(LcMsg::Propose(s.proposal.expect("drawn above")));
            },
            |ctx, s, inbox| {
                if s.color.is_some() {
                    return;
                }
                let mut beaten = false;
                for &(w, msg) in inbox {
                    match msg {
                        LcMsg::Colored(c) => {
                            if let Err(at) = s.used.binary_search(&c) {
                                s.used.insert(at, c);
                            }
                            if s.proposal == Some(c) {
                                beaten = true;
                            }
                        }
                        LcMsg::Propose(c) => {
                            if s.proposal == Some(c) && w < ctx.id {
                                beaten = true;
                            }
                        }
                    }
                }
                match s.proposal.take() {
                    Some(p) if !beaten => {
                        s.color = Some(p);
                    }
                    _ => {} // redraw next round
                }
            },
        );
        if let Some(i) = engine.node_states().iter().position(|s| s.stuck) {
            return Err(ColoringError::Unsolvable {
                context: format!("node {} has an empty available list", NodeId::from_index(i)),
            });
        }
    }
    for (i, s) in engine.node_states().iter().enumerate() {
        let v = NodeId::from_index(i);
        if !coloring.is_colored(v) {
            coloring.set(v, s.color.expect("loop exits only when total"));
        }
    }
    Ok(coloring)
}

/// Deterministic list coloring by schedule-class iteration; computes a
/// Linial schedule coloring internally. See module docs.
///
/// # Errors
///
/// [`ColoringError::Unsolvable`] when a node's available list empties
/// (malformed instance).
pub fn list_color_deterministic(
    g: &Graph,
    lists: &Lists,
    mut coloring: PartialColoring,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Result<PartialColoring, ColoringError> {
    let schedule = crate::linial::linial_coloring(g, ledger, phase);
    let classes = crate::reduce::color_classes(&schedule);
    for class in &classes {
        let picks: Vec<(NodeId, Color)> = {
            let mut out = Vec::new();
            for &v in class {
                if coloring.is_colored(v) {
                    continue;
                }
                let avail = available(g, lists, &coloring, v);
                let Some(&c) = avail.first() else {
                    return Err(ColoringError::Unsolvable {
                        context: format!("node {v} has an empty available list"),
                    });
                };
                out.push((v, c));
            }
            out
        };
        for &(v, c) in &picks {
            coloring.set(v, c);
        }
        ledger.charge(phase, 1);
    }
    debug_assert!(coloring.validate_proper(g).is_ok());
    Ok(coloring)
}

/// The available colors of `v`: its list minus the colors of its
/// *colored* neighbors.
pub fn available(g: &Graph, lists: &Lists, coloring: &PartialColoring, v: NodeId) -> Vec<Color> {
    let used = coloring.neighbor_colors(g, v);
    lists
        .of(v)
        .iter()
        .copied()
        .filter(|c| used.binary_search(c).is_err())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::check_list_coloring;
    use delta_graphs::generators;

    fn deg_plus_one_lists(g: &Graph, extra: usize) -> Lists {
        Lists::new(
            g.nodes()
                .map(|v| crate::palette::palette(g.degree(v) + 1 + extra))
                .collect(),
        )
    }

    #[test]
    fn randomized_solves_deg_plus_one() {
        for (i, g) in [
            generators::random_regular(300, 4, 3),
            generators::torus(7, 8),
            generators::random_tree(200, 2),
            generators::complete(6),
        ]
        .iter()
        .enumerate()
        {
            let lists = deg_plus_one_lists(g, 0);
            let mut ledger = RoundLedger::new();
            let c = list_color_randomized(
                g,
                &lists,
                PartialColoring::new(g.n()),
                i as u64,
                &mut ledger,
                "lc",
            )
            .unwrap();
            check_list_coloring(g, &c, &lists).unwrap();
            assert!(ledger.total() < 100, "rounds {}", ledger.total());
        }
    }

    #[test]
    fn deterministic_solves_deg_plus_one() {
        for g in [
            generators::random_regular(300, 4, 5),
            generators::torus(7, 8),
            generators::hypercube(5),
        ] {
            let lists = deg_plus_one_lists(&g, 0);
            let mut ledger = RoundLedger::new();
            let c = list_color_deterministic(
                &g,
                &lists,
                PartialColoring::new(g.n()),
                &mut ledger,
                "lc",
            )
            .unwrap();
            check_list_coloring(&g, &c, &lists).unwrap();
        }
    }

    #[test]
    fn respects_existing_partial_coloring() {
        let g = generators::cycle(8);
        let lists = deg_plus_one_lists(&g, 0);
        let mut partial = PartialColoring::new(8);
        partial.set(NodeId(0), Color(2));
        partial.set(NodeId(4), Color(1));
        let mut ledger = RoundLedger::new();
        let c = list_color(
            &g,
            &lists,
            partial,
            ListColorMethod::Randomized,
            9,
            &mut ledger,
            "lc",
        )
        .unwrap();
        assert_eq!(c.get(NodeId(0)), Some(Color(2)));
        assert_eq!(c.get(NodeId(4)), Some(Color(1)));
        check_list_coloring(&g, &c, &lists).unwrap();
    }

    #[test]
    fn heterogeneous_lists() {
        // Path with disjoint-ish lists still deg+1.
        let g = generators::path(4);
        let lists = Lists::new(vec![
            vec![Color(0), Color(9)],
            vec![Color(0), Color(5), Color(9)],
            vec![Color(5), Color(7), Color(9)],
            vec![Color(7), Color(9)],
        ]);
        assert!(lists.satisfies_deg_plus_one(&g));
        for method in [ListColorMethod::Randomized, ListColorMethod::Deterministic] {
            let mut ledger = RoundLedger::new();
            let c = list_color(
                &g,
                &lists,
                PartialColoring::new(4),
                method,
                1,
                &mut ledger,
                "lc",
            )
            .unwrap();
            check_list_coloring(&g, &c, &lists).unwrap();
        }
    }

    #[test]
    fn unsolvable_instance_is_reported() {
        // Two adjacent nodes with identical singleton lists.
        let g = generators::path(2);
        let lists = Lists::new(vec![vec![Color(0)], vec![Color(0)]]);
        let mut ledger = RoundLedger::new();
        let r = list_color_randomized(&g, &lists, PartialColoring::new(2), 0, &mut ledger, "lc");
        assert!(r.is_err());
    }

    #[test]
    fn empty_graph_trivially_colored() {
        let g = Graph::empty(0);
        let lists = Lists::new(vec![]);
        let mut ledger = RoundLedger::new();
        let c = list_color_randomized(&g, &lists, PartialColoring::new(0), 0, &mut ledger, "lc")
            .unwrap();
        assert!(c.is_total());
        assert_eq!(ledger.total(), 0);
    }

    use delta_graphs::Graph;
}
