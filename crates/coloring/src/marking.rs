//! The marking process (Section 2.2 / phase (4) of the randomized
//! algorithm).
//!
//! Every node of the remainder graph `H` selects itself independently
//! with probability `p`; a selected node with another selected node
//! within the backoff distance `b` unselects itself; each surviving
//! selected node picks two non-adjacent neighbors and colors them with
//! the first color. The selected node becomes a **T-node**: it now has
//! two same-colored neighbors, i.e. guaranteed slack ("one free color")
//! whenever it is colored later.
//!
//! Lemma 12 (Δ >= 4, b = 6) and Lemma 14 (Δ = 3, b = 12) show the graph
//! of unmarked nodes still expands, which drives the shattering analysis
//! (Lemmas 22, 23, 30, 31).

use crate::palette::{Color, PartialColoring};
use delta_graphs::{bfs, Graph, NodeId};
use local_model::wire::{gamma_u32s_bits, read_gamma_u32s, write_gamma_u32s};
use local_model::{BitReader, BitWriter, Engine, Outbox, RoundLedger, WireCodec, WireParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wire format of the marking process. The backoff flood forwards
/// every newly learned selected id, so a single message can carry up
/// to `Θ(Δ^b)` identifiers — unbounded in the CONGEST sense
/// ([`WireCodec::max_bits`] is `None`): the marking process as
/// implemented is **LOCAL-only** (a CONGEST port would pipeline the
/// flood over `Θ(Δ^b)` rounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MkMsg {
    /// Backoff flood: selected-node ids learned last round, forwarded.
    Flood(Vec<u32>),
    /// Survivor → chosen neighbor: "you are marked".
    Mark,
}

impl WireCodec for MkMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            MkMsg::Flood(ids) => {
                w.write_bool(false);
                write_gamma_u32s(w, ids);
            }
            MkMsg::Mark => w.write_bool(true),
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        match r.read_bool()? {
            true => Some(MkMsg::Mark),
            false => read_gamma_u32s(r).map(MkMsg::Flood),
        }
    }
    fn encoded_bits(&self) -> u64 {
        match self {
            MkMsg::Flood(ids) => 1 + gamma_u32s_bits(ids),
            MkMsg::Mark => 1,
        }
    }
    fn max_bits(_p: &WireParams) -> Option<u64> {
        None
    }
}

/// Parameters of the marking process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkingParams {
    /// Selection probability `p` (paper default `Δ^-b`).
    pub p: f64,
    /// Backoff distance `b` (6 for Δ >= 4, 12 for Δ = 3).
    pub b: usize,
}

impl MarkingParams {
    /// The paper's parameters for the given maximum degree: `b = 6`,
    /// `p = Δ^-6` for `Δ >= 4`; `b = 12`, `p = Δ^-12` for `Δ = 3`
    /// (Section 4.1 and Section 4.4).
    pub fn paper_defaults(delta: usize) -> Self {
        let b = if delta >= 4 { 6 } else { 12 };
        MarkingParams {
            p: (delta.max(2) as f64).powi(-(b as i32)),
            b,
        }
    }

    /// Practically calibrated parameters: same backoff distances, but
    /// `p` scaled to the inverse expected ball size `(Δ-1)^-b` so that a
    /// constant fraction of selections survives the backoff at feasible
    /// `n` (the paper's constants are asymptotic; see DESIGN.md §4).
    pub fn calibrated(delta: usize) -> Self {
        let b = if delta >= 4 { 6 } else { 12 };
        let base = (delta.max(3) - 1) as f64;
        MarkingParams {
            p: base.powi(-(b as i32)).min(0.05),
            b,
        }
    }
}

/// Result of the marking process on `h`.
#[derive(Debug, Clone)]
pub struct MarkingOutcome {
    /// Surviving selected nodes (the T-nodes), each with its two marked
    /// neighbors.
    pub t_nodes: Vec<TNode>,
    /// Mask of marked nodes (colored with [`Color::FIRST`]).
    pub marked: Vec<bool>,
    /// How many nodes initially selected themselves (before backoff).
    pub initially_selected: usize,
}

/// A T-node with its two (non-adjacent) marked neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TNode {
    /// The selected node.
    pub node: NodeId,
    /// First marked neighbor.
    pub m1: NodeId,
    /// Second marked neighbor.
    pub m2: NodeId,
}

/// Runs the marking process on the graph `h` (the remainder graph; use
/// an induced subgraph when operating within a larger instance), writing
/// [`Color::FIRST`] into `coloring` for marked nodes.
///
/// # Example
///
/// ```
/// use delta_coloring::marking::{check_marking, marking_process, MarkingParams};
/// use delta_coloring::palette::PartialColoring;
/// use delta_graphs::generators;
/// use local_model::RoundLedger;
///
/// let h = generators::random_regular(500, 4, 1);
/// let mut coloring = PartialColoring::new(h.n());
/// let mut ledger = RoundLedger::new();
/// let out = marking_process(
///     &h,
///     MarkingParams { p: 0.01, b: 6 },
///     42,
///     &mut coloring,
///     &mut ledger,
///     "marking",
/// );
/// assert!(check_marking(&h, &out, 6));
/// // Every T-node now has two same-colored neighbors: guaranteed slack.
/// for t in &out.t_nodes {
///     assert!(coloring.has_repeated_neighbor_color(&h, t.node));
/// }
/// ```
///
/// LOCAL cost: 1 round to select, `b` rounds for the backoff flood,
/// 1 round to deliver the marks — `b + 2` engine rounds, charged to
/// `phase`.
pub fn marking_process(
    h: &Graph,
    params: MarkingParams,
    seed: u64,
    coloring: &mut PartialColoring,
    ledger: &mut RoundLedger,
    phase: &str,
) -> MarkingOutcome {
    #[derive(Clone, Default)]
    struct MkState {
        selected: bool,
        /// Selected ids seen within the flood horizon (sorted, incl. self).
        seen: Vec<u32>,
        /// Newly learned ids, forwarded next flood round.
        frontier: Vec<u32>,
        /// The two neighbors this survivor marks (stashed by the driver).
        pick: Option<(NodeId, NodeId)>,
        marked: bool,
    }

    let p = params.p;
    let mut engine = Engine::new(h, seed, |_| MkState::default());
    // Round 1: every node privately flips its selection coin.
    engine.step(
        ledger,
        phase,
        |ctx, s: &mut MkState, _out: &mut Outbox<MkMsg>| {
            if ctx.random_f64() < p {
                s.selected = true;
                s.seen = vec![ctx.id.0];
                s.frontier = vec![ctx.id.0];
            }
        },
        |_, _, _| {},
    );
    let initially_selected = engine.states().iter().filter(|s| s.selected).count();
    // Rounds 2..=b+1: flood selected ids b hops so every selected node
    // learns of competitors within the backoff distance.
    for _ in 0..params.b {
        engine.step(
            ledger,
            phase,
            |_, s: &mut MkState, out: &mut Outbox<MkMsg>| {
                if !s.frontier.is_empty() {
                    out.broadcast(MkMsg::Flood(std::mem::take(&mut s.frontier)));
                }
            },
            |_, s, inbox| {
                for (_, m) in inbox {
                    let MkMsg::Flood(ids) = m else {
                        unreachable!("flood rounds carry Flood messages only");
                    };
                    for &id in ids {
                        if let Err(at) = s.seen.binary_search(&id) {
                            s.seen.insert(at, id);
                            s.frontier.push(id);
                        }
                    }
                }
            },
        );
    }
    // Backoff: a selected node survives only if it saw no competitor.
    let survivors: Vec<NodeId> = engine
        .states()
        .iter()
        .enumerate()
        .filter(|(i, s)| s.selected && s.seen.iter().all(|&w| w == *i as u32))
        .map(|(i, _)| NodeId::from_index(i))
        .collect();
    // Survivor picks: two random non-adjacent neighbors each. Pair
    // adjacency is radius-2 knowledge — information the backoff flood
    // already delivered for b >= 2; the sequential accept order only
    // matters for ablation backoffs b < 4, where 1-balls may overlap.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut marked = vec![false; h.n()];
    let mut t_nodes = Vec::new();
    for &v in &survivors {
        // Pick two random non-adjacent neighbors (uncolored, unmarked,
        // and not adjacent to an existing mark — for the paper's b >= 6
        // the last condition never triggers, but it keeps the coloring
        // proper under ablation backoffs b < 4).
        let nbrs: Vec<NodeId> = h
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| {
                !coloring.is_colored(w)
                    && !marked[w.index()]
                    && !h.neighbors(w).iter().any(|&x| marked[x.index()])
            })
            .collect();
        let mut pairs = Vec::new();
        for (i, &a) in nbrs.iter().enumerate() {
            for &b2 in &nbrs[i + 1..] {
                if !h.has_edge(a, b2) {
                    pairs.push((a, b2));
                }
            }
        }
        if pairs.is_empty() {
            continue; // neighborhood is a clique: cannot form a T-node
        }
        let (m1, m2) = pairs[rng.random_range(0..pairs.len())];
        marked[m1.index()] = true;
        marked[m2.index()] = true;
        engine.states_mut()[v.index()].pick = Some((m1, m2));
        t_nodes.push(TNode { node: v, m1, m2 });
    }
    // Round b+2: survivors deliver their marks as per-neighbor directed
    // messages; recipients record the mark.
    engine.step(
        ledger,
        phase,
        |_, s: &mut MkState, out: &mut Outbox<MkMsg>| {
            if let Some((m1, m2)) = s.pick {
                out.send_to(m1, MkMsg::Mark);
                out.send_to(m2, MkMsg::Mark);
            }
        },
        |_, s, inbox| {
            if !inbox.is_empty() {
                s.marked = true;
            }
        },
    );
    let marked: Vec<bool> = engine.states().iter().map(|s| s.marked).collect();
    for (i, &m) in marked.iter().enumerate() {
        if m {
            coloring.set(NodeId::from_index(i), Color::FIRST);
        }
    }
    MarkingOutcome {
        t_nodes,
        marked,
        initially_selected,
    }
}

/// Validates the postconditions of the marking process (test/bench
/// helper): marked nodes are properly colored with the first color and
/// pairwise non-adjacent; every T-node has its two marked neighbors
/// non-adjacent; surviving T-nodes are pairwise farther than `b`.
pub fn check_marking(h: &Graph, out: &MarkingOutcome, b: usize) -> bool {
    for (u, v) in h.edges() {
        if out.marked[u.index()] && out.marked[v.index()] {
            return false;
        }
    }
    for t in &out.t_nodes {
        if h.has_edge(t.m1, t.m2) || !h.has_edge(t.node, t.m1) || !h.has_edge(t.node, t.m2) {
            return false;
        }
        if !out.marked[t.m1.index()] || !out.marked[t.m2.index()] {
            return false;
        }
    }
    for (i, t) in out.t_nodes.iter().enumerate() {
        let d = bfs::distances(h, t.node);
        for t2 in &out.t_nodes[i + 1..] {
            if (d[t2.node.index()] as usize) <= b {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_graphs::generators;

    #[test]
    fn paper_defaults_match_section_4() {
        let p4 = MarkingParams::paper_defaults(4);
        assert_eq!(p4.b, 6);
        assert!((p4.p - 4f64.powi(-6)).abs() < 1e-12);
        let p3 = MarkingParams::paper_defaults(3);
        assert_eq!(p3.b, 12);
    }

    #[test]
    fn marking_postconditions_hold() {
        let g = generators::random_regular(2000, 4, 3);
        let params = MarkingParams { p: 0.01, b: 6 };
        let mut coloring = PartialColoring::new(g.n());
        let mut ledger = RoundLedger::new();
        let out = marking_process(&g, params, 1, &mut coloring, &mut ledger, "mark");
        assert!(check_marking(&g, &out, 6));
        assert_eq!(ledger.total(), 8);
        // Marked nodes carry the first color.
        for t in &out.t_nodes {
            assert_eq!(coloring.get(t.m1), Some(Color::FIRST));
            assert_eq!(coloring.get(t.m2), Some(Color::FIRST));
            assert!(!coloring.is_colored(t.node));
        }
    }

    #[test]
    fn high_p_still_respects_backoff() {
        let g = generators::random_regular(500, 3, 7);
        let params = MarkingParams { p: 0.5, b: 12 };
        let mut coloring = PartialColoring::new(g.n());
        let mut ledger = RoundLedger::new();
        let out = marking_process(&g, params, 2, &mut coloring, &mut ledger, "mark");
        assert!(check_marking(&g, &out, 12));
        // With p = 0.5 on 500 nodes and b = 12, backoff kills almost
        // everything (expected survivors ~ 0).
        assert!(out.initially_selected > 100);
    }

    #[test]
    fn clique_neighborhoods_produce_no_t_nodes() {
        let g = generators::complete(6);
        let params = MarkingParams { p: 1.0, b: 0 };
        let mut coloring = PartialColoring::new(g.n());
        let mut ledger = RoundLedger::new();
        // b = 0: backoff never unselects; but neighborhoods are cliques,
        // so no non-adjacent pair exists.
        let out = marking_process(&g, params, 3, &mut coloring, &mut ledger, "mark");
        assert!(out.t_nodes.is_empty());
        assert_eq!(coloring.colored_count(), 0);
    }

    #[test]
    fn t_nodes_give_slack() {
        // On a long even cycle, a T-node's two marked neighbors share a
        // color, so the T-node always retains a free color in a
        // Δ=2...3-palette scenario.
        let g = generators::cycle(40);
        let params = MarkingParams { p: 0.2, b: 4 };
        let mut coloring = PartialColoring::new(g.n());
        let mut ledger = RoundLedger::new();
        let out = marking_process(&g, params, 5, &mut coloring, &mut ledger, "mark");
        for t in &out.t_nodes {
            assert!(coloring.has_repeated_neighbor_color(&g, t.node));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::random_regular(400, 4, 11);
        let run = |seed| {
            let mut coloring = PartialColoring::new(g.n());
            let mut ledger = RoundLedger::new();
            let out = marking_process(
                &g,
                MarkingParams { p: 0.02, b: 6 },
                seed,
                &mut coloring,
                &mut ledger,
                "mark",
            );
            out.t_nodes
        };
        assert_eq!(run(9), run(9));
    }
}
