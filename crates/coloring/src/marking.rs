//! The marking process (Section 2.2 / phase (4) of the randomized
//! algorithm).
//!
//! Every node of the remainder graph `H` selects itself independently
//! with probability `p`; a selected node with another selected node
//! within the backoff distance `b` unselects itself; each surviving
//! selected node picks two non-adjacent neighbors and colors them with
//! the first color. The selected node becomes a **T-node**: it now has
//! two same-colored neighbors, i.e. guaranteed slack ("one free color")
//! whenever it is colored later.
//!
//! The whole process executes on the message-passing engine: the
//! backoff is a [`local_model::run_reach_phase`] flood of selected ids,
//! the neighborhood probe behind the survivor picks is a radius-2
//! [`local_model::run_ball_phase`], and the marks land through a
//! 3-round propose/claim/accept exchange — every round and every bit on
//! the wire is measured, and the whole process is schedule-independent
//! (see `tests/determinism.rs`).
//!
//! Lemma 12 (Δ >= 4, b = 6) and Lemma 14 (Δ = 3, b = 12) show the graph
//! of unmarked nodes still expands, which drives the shattering analysis
//! (Lemmas 22, 23, 30, 31).

use crate::palette::{Color, PartialColoring};
use delta_graphs::{bfs, Graph, NodeId};
use local_model::wire::{gamma_bits, gamma_max_bits};
use local_model::{
    run_ball_phase, run_ball_phase_within, run_reach_phase, run_reach_phase_within, BitReader,
    BitWriter, Engine, InducedOverlay, Outbox, OverlayEngine, RoundDriver, RoundLedger, WireCodec,
    WireParams,
};

/// Wire format of the marking process's **mark-placement** rounds
/// (propose / claim / accept) — each message is `O(log n)` bits. The
/// process as a whole is still **LOCAL-only**: its backoff flood
/// executes as an engine-backed [`local_model::run_reach_phase`] whose
/// [`local_model::ReachMsg`] relays batch every selected id crossing an
/// edge (`Θ(Δ^b)` of them, unbounded), and the pick step collects
/// radius-2 [`local_model::BallView`]s — both measured on the wire by
/// the engine; the bandwidth registry classifies the substrate by the
/// flood, not by these bounded control messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MkMsg {
    /// Survivor → chosen neighbor: "I propose to mark you".
    Propose,
    /// Proposed node → all neighbors: "my strongest proposer is `id`"
    /// (conflict resolution: of two adjacent proposed nodes, the one
    /// with the smaller proposer keeps its mark).
    Claim(u32),
    /// Accepted mark → its winning proposer: "your mark stuck".
    Accept,
}

impl WireCodec for MkMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            MkMsg::Propose => w.write_bits(0, 2),
            MkMsg::Claim(id) => {
                w.write_bits(1, 2);
                w.write_gamma(*id as u64);
            }
            MkMsg::Accept => w.write_bits(2, 2),
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        match r.read_bits(2)? {
            0 => Some(MkMsg::Propose),
            1 => r.read_gamma().map(|id| MkMsg::Claim(id as u32)),
            2 => Some(MkMsg::Accept),
            _ => None,
        }
    }
    fn encoded_bits(&self) -> u64 {
        match self {
            MkMsg::Propose | MkMsg::Accept => 2,
            MkMsg::Claim(id) => 2 + gamma_bits(*id as u64),
        }
    }
    fn max_bits(p: &WireParams) -> Option<u64> {
        Some(2 + gamma_max_bits(p.n))
    }
}

/// Parameters of the marking process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkingParams {
    /// Selection probability `p` (paper default `Δ^-b`).
    pub p: f64,
    /// Backoff distance `b` (6 for Δ >= 4, 12 for Δ = 3).
    pub b: usize,
}

impl MarkingParams {
    /// The paper's parameters for the given maximum degree: `b = 6`,
    /// `p = Δ^-6` for `Δ >= 4`; `b = 12`, `p = Δ^-12` for `Δ = 3`
    /// (Section 4.1 and Section 4.4).
    pub fn paper_defaults(delta: usize) -> Self {
        let b = if delta >= 4 { 6 } else { 12 };
        MarkingParams {
            p: (delta.max(2) as f64).powi(-(b as i32)),
            b,
        }
    }

    /// Practically calibrated parameters: same backoff distances, but
    /// `p` scaled to the inverse expected ball size `(Δ-1)^-b` so that a
    /// constant fraction of selections survives the backoff at feasible
    /// `n` (the paper's constants are asymptotic; see DESIGN.md §4).
    pub fn calibrated(delta: usize) -> Self {
        let b = if delta >= 4 { 6 } else { 12 };
        let base = (delta.max(3) - 1) as f64;
        MarkingParams {
            p: base.powi(-(b as i32)).min(0.05),
            b,
        }
    }
}

/// Result of the marking process on `h`.
#[derive(Debug, Clone)]
pub struct MarkingOutcome {
    /// Surviving selected nodes (the T-nodes), each with its two marked
    /// neighbors.
    pub t_nodes: Vec<TNode>,
    /// Mask of marked nodes (colored with [`Color::FIRST`]).
    pub marked: Vec<bool>,
    /// How many nodes initially selected themselves (before backoff).
    pub initially_selected: usize,
}

/// A T-node with its two (non-adjacent) marked neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TNode {
    /// The selected node.
    pub node: NodeId,
    /// First marked neighbor.
    pub m1: NodeId,
    /// Second marked neighbor.
    pub m2: NodeId,
}

/// Runs the marking process on the graph `h` (the remainder graph; use
/// an induced subgraph when operating within a larger instance), writing
/// [`Color::FIRST`] into `coloring` for marked nodes.
///
/// # Example
///
/// ```
/// use delta_coloring::marking::{check_marking, marking_process, MarkingParams};
/// use delta_coloring::palette::PartialColoring;
/// use delta_graphs::generators;
/// use local_model::RoundLedger;
///
/// let h = generators::random_regular(500, 4, 1);
/// let mut coloring = PartialColoring::new(h.n());
/// let mut ledger = RoundLedger::new();
/// let out = marking_process(
///     &h,
///     MarkingParams { p: 0.01, b: 6 },
///     42,
///     &mut coloring,
///     &mut ledger,
///     "marking",
/// );
/// assert!(check_marking(&h, &out, 6));
/// // Every T-node now has two same-colored neighbors: guaranteed slack.
/// for t in &out.t_nodes {
///     assert!(coloring.has_repeated_neighbor_color(&h, t.node));
/// }
/// ```
///
/// LOCAL cost, all engine-executed and measured: 1 round to select,
/// `b` rounds of backoff flood ([`local_model::run_reach_phase`]),
/// 2 rounds of radius-2 ball collection for the survivor picks
/// ([`local_model::run_ball_phase`]), and 3 rounds of
/// propose / claim / accept mark placement — `b + 6` rounds charged to
/// `phase`, with nonzero `bits_sent` whenever anything was selected.
pub fn marking_process(
    h: &Graph,
    params: MarkingParams,
    seed: u64,
    coloring: &mut PartialColoring,
    ledger: &mut RoundLedger,
    phase: &str,
) -> MarkingOutcome {
    marking_core(h, None, params, seed, coloring, ledger, phase)
}

/// [`marking_process`] on the **induced subgraph** `G[members]`,
/// executed through the [`InducedOverlay`] on the host engine: removed
/// (non-member) nodes send nothing and receive nothing, so the backoff
/// flood, the radius-2 pick collection, and the propose/claim/accept
/// placement all run as real host-graph message-passing rounds with
/// measured bits — this is how the randomized driver executes its
/// remainder-graph phase (4).
///
/// All ids — the outcome's T-nodes and marks, and the `coloring` (which
/// must have `members.count_true()` slots) — live in the member-rank
/// space, identical to a materialized `g.induced(members)` run.
#[allow(clippy::too_many_arguments)]
pub fn marking_process_within(
    g: &Graph,
    members: &[bool],
    params: MarkingParams,
    seed: u64,
    coloring: &mut PartialColoring,
    ledger: &mut RoundLedger,
    phase: &str,
) -> MarkingOutcome {
    marking_core(g, Some(members), params, seed, coloring, ledger, phase)
}

/// Per-node state of the mark-placement rounds.
#[derive(Clone, Default)]
struct ResState {
    pick: Option<(NodeId, NodeId)>,
    /// Smallest id among the survivors that proposed to mark me.
    proposer: Option<u32>,
    marked: bool,
    accepted: (bool, bool),
}

/// One no-traffic selection round: every node privately flips its
/// selection coin from its driver rng stream.
fn selection_round<DR: RoundDriver<bool>>(
    mut driver: DR,
    p: f64,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Vec<bool> {
    driver.round_step(
        ledger,
        phase,
        |ctx, s: &mut bool, _out: &mut Outbox<MkMsg>| {
            if ctx.random_f64() < p {
                *s = true;
            }
        },
        |_, _, _| {},
    );
    driver.into_node_states()
}

/// Rounds b+4..=b+6: the 3-round propose/claim/accept mark placement
/// (see [`marking_process`] docs), generic over the round driver.
fn placement_rounds<DR: RoundDriver<ResState>>(
    mut driver: DR,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Vec<ResState> {
    driver.round_step(
        ledger,
        phase,
        |_, s: &mut ResState, out: &mut Outbox<MkMsg>| {
            if let Some((m1, m2)) = s.pick {
                out.send_to(m1, MkMsg::Propose);
                out.send_to(m2, MkMsg::Propose);
            }
        },
        |_, s, inbox| {
            for &(w, ref m) in inbox {
                if matches!(m, MkMsg::Propose) {
                    s.proposer = Some(s.proposer.map_or(w.0, |q| q.min(w.0)));
                }
            }
        },
    );
    driver.round_step(
        ledger,
        phase,
        |_, s: &mut ResState, out: &mut Outbox<MkMsg>| {
            if let Some(q) = s.proposer {
                out.broadcast(MkMsg::Claim(q));
            }
        },
        |_, s, inbox| {
            if let Some(mine) = s.proposer {
                // Adjacent claims never tie: one survivor's two picks
                // are non-adjacent by construction.
                let lost = inbox
                    .iter()
                    .any(|(_, m)| matches!(m, MkMsg::Claim(q) if *q < mine));
                s.marked = !lost;
            }
        },
    );
    driver.round_step(
        ledger,
        phase,
        |_, s: &mut ResState, out: &mut Outbox<MkMsg>| {
            if s.marked {
                out.send_to(
                    NodeId(s.proposer.expect("marked nodes were proposed")),
                    MkMsg::Accept,
                );
            }
        },
        |_, s, inbox| {
            if let Some((m1, m2)) = s.pick {
                for &(w, ref m) in inbox {
                    if matches!(m, MkMsg::Accept) {
                        if w == m1 {
                            s.accepted.0 = true;
                        }
                        if w == m2 {
                            s.accepted.1 = true;
                        }
                    }
                }
            }
        },
    );
    driver.into_node_states()
}

/// The marking process, written once for both substrates: the whole
/// host graph (`members == None`) and the induced subgraph through the
/// overlay (`members == Some(mask)` — node ids are member ranks).
#[allow(clippy::too_many_arguments)]
fn marking_core(
    g: &Graph,
    members: Option<&[bool]>,
    params: MarkingParams,
    seed: u64,
    coloring: &mut PartialColoring,
    ledger: &mut RoundLedger,
    phase: &str,
) -> MarkingOutcome {
    let p = params.p;
    // Round 1: every node privately flips its selection coin (no
    // traffic; the draw comes from the node's engine rng stream).
    let selected = match members {
        None => selection_round(
            local_model::compile(Engine::new(g, seed, |_| false)),
            p,
            ledger,
            phase,
        ),
        Some(m) => selection_round(
            local_model::compile(OverlayEngine::new(
                g,
                InducedOverlay { members: m },
                seed,
                |_| false,
            )),
            p,
            ledger,
            phase,
        ),
    };
    let initially_selected = selected.iter().filter(|&&s| s).count();

    // Rounds 2..=b+1: backoff — selected ids flood `b` hops; a selected
    // node survives only if it hears no competitor.
    let source = |v: NodeId| selected[v.index()].then_some(());
    let acc_init = |v: NodeId| (v.0, false);
    let acc_absorb = |acc: &mut (u32, bool), id: u32, _dist: u32, _m: &()| {
        if id != acc.0 {
            acc.1 = true;
        }
    };
    let backoff_finish =
        |ctx: &mut local_model::NodeCtx<'_>, acc: &(u32, bool)| selected[ctx.id.index()] && !acc.1;
    let survivor: Vec<bool> = match members {
        None => run_reach_phase(
            g,
            0,
            params.b,
            source,
            acc_init,
            acc_absorb,
            backoff_finish,
            ledger,
            phase,
        ),
        Some(m) => run_reach_phase_within(
            g,
            m,
            0,
            params.b,
            source,
            acc_init,
            acc_absorb,
            backoff_finish,
            ledger,
            phase,
        ),
    };

    // Rounds b+2..=b+3: radius-2 ball collection; each survivor picks
    // two random non-adjacent uncolored neighbors with its private rng.
    // Pair adjacency is exactly radius-2 knowledge, delivered by the
    // collected view's edge certificates.
    let pick_payload = |v: NodeId| coloring.is_colored(v);
    let pick_rule = |ctx: &mut local_model::NodeCtx<'_>,
                     view: &local_model::BallView<bool>|
     -> Option<(NodeId, NodeId)> {
        if !survivor[ctx.id.index()] {
            return None;
        }
        let nbrs: Vec<u32> = view
            .members
            .iter()
            .zip(&view.dist)
            .zip(&view.payloads)
            .filter(|((_, &d), &colored)| d == 1 && !colored)
            .map(|((&id, _), _)| id)
            .collect();
        let mut pairs = Vec::new();
        for (i, &a) in nbrs.iter().enumerate() {
            for &b2 in &nbrs[i + 1..] {
                if view.edges.binary_search(&(a.min(b2), a.max(b2))).is_err() {
                    pairs.push((a, b2));
                }
            }
        }
        if pairs.is_empty() {
            return None; // neighborhood is a clique: no T-node here
        }
        let (m1, m2) = pairs[ctx.random_below(pairs.len() as u64) as usize];
        Some((NodeId(m1), NodeId(m2)))
    };
    let pick_seed = seed ^ 0x9e37_79b9_7f4a_7c15;
    let picks: Vec<Option<(NodeId, NodeId)>> = match members {
        None => run_ball_phase(g, pick_seed, 2, pick_payload, pick_rule, ledger, phase),
        Some(m) => {
            run_ball_phase_within(g, m, pick_seed, 2, pick_payload, pick_rule, ledger, phase)
        }
    };

    // Rounds b+4..=b+6: conflict-free mark placement. For the paper's
    // b >= 4 survivors are too far apart for their picks to interact and
    // every proposal is accepted unopposed; the resolution keeps the
    // marked set independent (hence the coloring proper) under ablation
    // backoffs b < 4 too: of two adjacent proposed marks, the one whose
    // strongest (smallest-id) proposer is smaller keeps its mark.
    let res_init = |v: NodeId| ResState {
        pick: picks[v.index()],
        ..Default::default()
    };
    let states = match members {
        None => placement_rounds(
            local_model::compile(Engine::new(g, seed ^ 0x5151, res_init)),
            ledger,
            phase,
        ),
        Some(m) => placement_rounds(
            local_model::compile(OverlayEngine::new(
                g,
                InducedOverlay { members: m },
                seed ^ 0x5151,
                res_init,
            )),
            ledger,
            phase,
        ),
    };
    let marked: Vec<bool> = states.iter().map(|s| s.marked).collect();
    let t_nodes: Vec<TNode> = states
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s.pick {
            Some((m1, m2)) if s.accepted == (true, true) => Some(TNode {
                node: NodeId::from_index(i),
                m1,
                m2,
            }),
            _ => None,
        })
        .collect();
    for (i, &m) in marked.iter().enumerate() {
        if m {
            coloring.set(NodeId::from_index(i), Color::FIRST);
        }
    }
    MarkingOutcome {
        t_nodes,
        marked,
        initially_selected,
    }
}

/// Validates the postconditions of the marking process (test/bench
/// helper): marked nodes are properly colored with the first color and
/// pairwise non-adjacent; every T-node has its two marked neighbors
/// non-adjacent; surviving T-nodes are pairwise farther than `b`.
pub fn check_marking(h: &Graph, out: &MarkingOutcome, b: usize) -> bool {
    for (u, v) in h.edges() {
        if out.marked[u.index()] && out.marked[v.index()] {
            return false;
        }
    }
    for t in &out.t_nodes {
        if h.has_edge(t.m1, t.m2) || !h.has_edge(t.node, t.m1) || !h.has_edge(t.node, t.m2) {
            return false;
        }
        if !out.marked[t.m1.index()] || !out.marked[t.m2.index()] {
            return false;
        }
    }
    for (i, t) in out.t_nodes.iter().enumerate() {
        let d = bfs::distances(h, t.node);
        for t2 in &out.t_nodes[i + 1..] {
            if (d[t2.node.index()] as usize) <= b {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_graphs::generators;

    #[test]
    fn paper_defaults_match_section_4() {
        let p4 = MarkingParams::paper_defaults(4);
        assert_eq!(p4.b, 6);
        assert!((p4.p - 4f64.powi(-6)).abs() < 1e-12);
        let p3 = MarkingParams::paper_defaults(3);
        assert_eq!(p3.b, 12);
    }

    #[test]
    fn marking_postconditions_hold() {
        let g = generators::random_regular(2000, 4, 3);
        let params = MarkingParams { p: 0.01, b: 6 };
        let mut coloring = PartialColoring::new(g.n());
        let mut ledger = RoundLedger::new();
        let out = marking_process(&g, params, 1, &mut coloring, &mut ledger, "mark");
        assert!(check_marking(&g, &out, 6));
        // 1 select + b flood + 2 ball + 3 placement rounds, all engine
        // rounds with measured traffic.
        assert_eq!(ledger.total(), 6 + 6);
        assert!(ledger.bits_sent() > 0);
        assert!(ledger.max_edge_bits() > 0);
        // Marked nodes carry the first color.
        for t in &out.t_nodes {
            assert_eq!(coloring.get(t.m1), Some(Color::FIRST));
            assert_eq!(coloring.get(t.m2), Some(Color::FIRST));
            assert!(!coloring.is_colored(t.node));
        }
    }

    #[test]
    fn high_p_still_respects_backoff() {
        let g = generators::random_regular(500, 3, 7);
        let params = MarkingParams { p: 0.5, b: 12 };
        let mut coloring = PartialColoring::new(g.n());
        let mut ledger = RoundLedger::new();
        let out = marking_process(&g, params, 2, &mut coloring, &mut ledger, "mark");
        assert!(check_marking(&g, &out, 12));
        // With p = 0.5 on 500 nodes and b = 12, backoff kills almost
        // everything (expected survivors ~ 0).
        assert!(out.initially_selected > 100);
    }

    #[test]
    fn clique_neighborhoods_produce_no_t_nodes() {
        let g = generators::complete(6);
        let params = MarkingParams { p: 1.0, b: 0 };
        let mut coloring = PartialColoring::new(g.n());
        let mut ledger = RoundLedger::new();
        // b = 0: backoff never unselects; but neighborhoods are cliques,
        // so no non-adjacent pair exists.
        let out = marking_process(&g, params, 3, &mut coloring, &mut ledger, "mark");
        assert!(out.t_nodes.is_empty());
        assert_eq!(coloring.colored_count(), 0);
    }

    #[test]
    fn t_nodes_give_slack() {
        // On a long even cycle, a T-node's two marked neighbors share a
        // color, so the T-node always retains a free color in a
        // Δ=2...3-palette scenario.
        let g = generators::cycle(40);
        let params = MarkingParams { p: 0.2, b: 4 };
        let mut coloring = PartialColoring::new(g.n());
        let mut ledger = RoundLedger::new();
        let out = marking_process(&g, params, 5, &mut coloring, &mut ledger, "mark");
        for t in &out.t_nodes {
            assert!(coloring.has_repeated_neighbor_color(&g, t.node));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::random_regular(400, 4, 11);
        let run = |seed| {
            let mut coloring = PartialColoring::new(g.n());
            let mut ledger = RoundLedger::new();
            let out = marking_process(
                &g,
                MarkingParams { p: 0.02, b: 6 },
                seed,
                &mut coloring,
                &mut ledger,
                "mark",
            );
            out.t_nodes
        };
        assert_eq!(run(9), run(9));
    }
}
