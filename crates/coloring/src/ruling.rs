//! Ruling sets and ruling forests (Lemma 20 of the paper).
//!
//! An `(α, β)` ruling set of `G` is a set `M` with pairwise distance
//! `>= α` between members and every node within distance `β` of `M`.
//!
//! * [`ruling_set_randomized`]: Luby MIS on `G^{α-1}` — an
//!   `(α, α-1)` ruling set in `O((α-1)·log n)` rounds w.h.p. (stand-in
//!   for Lemma 20 (3)/(4)).
//! * [`ruling_set_deterministic`]: the classical bit-halving
//!   construction on node identifiers — a `(2, O(log n))` ruling set in
//!   `O(log n)` rounds, lifted to `(α, O(α·log n))` via the power graph
//!   (stand-in for Lemma 20 (1)/(2), see DESIGN.md §4).
//! * [`ruling_forest`]: the assignment of every node to its closest
//!   ruling node — the base-layer structure of the layering technique.

use delta_graphs::bfs;
use delta_graphs::{Graph, NodeId};
use local_model::wire::{
    gamma_bits, gamma_max_bits, gamma_u32s_bits, read_gamma_u32s, write_gamma_u32s,
};
use local_model::{run_reach_phase, BitReader, BitWriter, RoundLedger, WireCodec, WireParams};

/// Wire format of the ruling-set constructions. Both paths **execute
/// through the engine**: the deterministic bit-halving runs one
/// [`local_model::run_reach_phase`] flood of candidate ids per bit
/// level at radius `α-1`, and the randomized Luby path runs on the
/// `G^{α-1}` [`local_model::PowerOverlay`] — `α-1` measured relay
/// rounds ([`local_model::OverlayRelay`] envelopes) per virtual round,
/// with no power graph materialized. Rounds and per-edge bits are
/// measured, not estimated ([`RulingMsg::Relay`] is the declared shape
/// of the relays). Either way, a power-graph round relays up to
/// `Δ^(α-2)` foreign messages over one edge — unbounded, hence
/// `max_bits` is `None` and the substrate is **LOCAL-only** for
/// non-constant `α` (the bandwidth registry carves out the
/// CONGEST-feasible `α = 2` bit-halving case via
/// [`RulingMsg::candidate_max_bits`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RulingMsg {
    /// Bit-halving candidacy: "id `v` is a surviving candidate".
    Candidate(u32),
    /// Power-graph relay: candidate ids forwarded toward distance-`k`
    /// nodes (one entry per relayed message).
    Relay(Vec<u32>),
}

impl RulingMsg {
    /// Bound for executions that only ever send
    /// [`RulingMsg::Candidate`] — the `α = 2` bit-halving recursion.
    pub fn candidate_max_bits(p: &WireParams) -> u64 {
        1 + gamma_max_bits(p.n)
    }
}

impl WireCodec for RulingMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            RulingMsg::Candidate(id) => {
                w.write_bool(false);
                w.write_gamma(*id as u64);
            }
            RulingMsg::Relay(ids) => {
                w.write_bool(true);
                write_gamma_u32s(w, ids);
            }
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        match r.read_bool()? {
            false => Some(RulingMsg::Candidate(r.read_gamma()? as u32)),
            true => read_gamma_u32s(r).map(RulingMsg::Relay),
        }
    }
    fn encoded_bits(&self) -> u64 {
        match self {
            RulingMsg::Candidate(id) => 1 + gamma_bits(*id as u64),
            RulingMsg::Relay(ids) => 1 + gamma_u32s_bits(ids),
        }
    }
    fn max_bits(_p: &WireParams) -> Option<u64> {
        None
    }
}

/// Computes an `(alpha, alpha-1)` ruling set via Luby MIS on
/// `G^{alpha-1}`; rounds charged with the `×(alpha-1)` simulation factor.
///
/// # Example
///
/// ```
/// use delta_coloring::ruling::{is_ruling_set, ruling_set_randomized};
/// use delta_graphs::generators;
/// use local_model::RoundLedger;
///
/// let g = generators::cycle(40);
/// let mut ledger = RoundLedger::new();
/// let set = ruling_set_randomized(&g, 4, 7, &mut ledger, "ruling");
/// assert!(is_ruling_set(&g, &set, 4, 3)); // distance >= 4, domination <= 3
/// ```
///
/// # Panics
///
/// Panics if `alpha < 2`.
pub fn ruling_set_randomized(
    g: &Graph,
    alpha: usize,
    seed: u64,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Vec<NodeId> {
    assert!(alpha >= 2, "alpha must be at least 2");
    let mask = crate::mis::luby_mis_on_power(g, alpha - 1, seed, ledger, phase);
    crate::mis::members(&mask)
}

/// An `(alpha, alpha-1)` ruling set of the **live subgraph**
/// `G[members]` (distances measured inside the subgraph), via Luby MIS
/// on the composed `Induced ∘ Power` overlay
/// ([`crate::mis::luby_mis_within_power`]): the relay flood is confined
/// to members, non-members stay silent, and the ledger is charged the
/// true `(alpha-1)`-dilated relay rounds with measured bits.
///
/// # Panics
///
/// Panics if `alpha < 2`.
pub fn ruling_set_randomized_within(
    g: &Graph,
    members: &[bool],
    alpha: usize,
    seed: u64,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Vec<NodeId> {
    assert!(alpha >= 2, "alpha must be at least 2");
    let mask = crate::mis::luby_mis_within_power(g, members, alpha - 1, seed, ledger, phase);
    crate::mis::members(&mask)
}

/// Deterministic `(2, O(log n))` ruling set by id-bit halving, executed
/// on the message-passing engine (see
/// [`ruling_set_deterministic_alpha`]; this is the `alpha = 2` case,
/// whose per-level floods are single-hop candidate announcements).
///
/// Charges one measured engine round per bit level.
pub fn ruling_set_deterministic(g: &Graph, ledger: &mut RoundLedger, phase: &str) -> Vec<NodeId> {
    ruling_set_deterministic_alpha(g, 2, ledger, phase)
}

/// Deterministic `(alpha, O(alpha·log n))` ruling set by id-bit halving
/// where adjacency is "distance < alpha in G" — the classical recursion
/// on the power graph `G^{alpha-1}`, executed **bottom-up as a real
/// message-passing program**: all merges of one bit level run
/// simultaneously (their node sets are disjoint), so each level is one
/// engine-backed [`run_reach_phase`] in which the level's candidates
/// (surviving nodes whose level bit is 0) flood their ids `alpha-1`
/// hops and every surviving second-half node drops out iff it hears a
/// candidate of its own merge group. Rounds and per-edge bits are
/// measured by the engine — `alpha-1` rounds per level, `⌈log₂ n⌉`
/// levels.
///
/// The only phase state is a reusable survivor mask (updated level by
/// level); the per-merge `HashSet`/BFS scratch of the old centrally
/// simulated recursion is gone, and per-node flood dedup lives inside
/// the reach phase's `O(ring)` window.
///
/// # Panics
///
/// Panics if `alpha < 2`.
pub fn ruling_set_deterministic_alpha(
    g: &Graph,
    alpha: usize,
    ledger: &mut RoundLedger,
    phase: &str,
) -> Vec<NodeId> {
    assert!(alpha >= 2, "alpha must be at least 2");
    if g.n() == 0 {
        return Vec::new();
    }
    let bits = usize::BITS - (g.n() - 1).max(1).leading_zeros();
    // Survivor mask: the phase's only persistent state, reused across
    // levels. Initially everyone is the ruling set of its singleton
    // recursion leaf.
    let mut survive = vec![true; g.n()];
    for bit in 0..bits {
        // Merge level `bit`: groups are ids agreeing above `bit`; the
        // group's first half (bit clear) keeps its survivors, and a
        // second-half survivor stays only if no first-half survivor of
        // its own group is within distance alpha-1.
        let survive_in = &survive;
        let decisions = run_reach_phase(
            g,
            0,
            alpha - 1,
            |v| (survive_in[v.index()] && v.0 & (1 << bit) == 0).then_some(()),
            |v| (v.0, false),
            |acc: &mut (u32, bool), id, _dist, _m| {
                // Same merge group = same id prefix above the level bit.
                if id != acc.0 && (id as u64) >> (bit + 1) == (acc.0 as u64) >> (bit + 1) {
                    acc.1 = true;
                }
            },
            |ctx, &(_, hit)| survive_in[ctx.id.index()] && (ctx.id.0 & (1 << bit) == 0 || !hit),
            ledger,
            phase,
        );
        survive = decisions;
    }
    survive
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s)
        .map(|(i, _)| NodeId::from_index(i))
        .collect()
}

/// A ruling forest: every node assigned to its closest ruling node
/// (ties by smaller id), with the distance to it.
#[derive(Debug, Clone)]
pub struct RulingForest {
    /// Distance to the assigned root ([`delta_graphs::bfs::UNREACHABLE`]
    /// if no root reaches the node).
    pub dist: Vec<u32>,
    /// Assigned root per node (`None` if unreachable).
    pub root: Vec<Option<NodeId>>,
    /// The ruling nodes.
    pub roots: Vec<NodeId>,
}

impl RulingForest {
    /// The maximum finite assignment distance (the forest's depth).
    pub fn depth(&self) -> usize {
        self.dist
            .iter()
            .filter(|&&d| d != bfs::UNREACHABLE)
            .max()
            .copied()
            .unwrap_or(0) as usize
    }
}

/// Builds the ruling forest of `roots` by multi-source BFS; costs
/// `depth` rounds, charged to `phase`.
pub fn ruling_forest(
    g: &Graph,
    roots: &[NodeId],
    ledger: &mut RoundLedger,
    phase: &str,
) -> RulingForest {
    let (dist, root) = bfs::multi_source_assignment(g, roots);
    let forest = RulingForest {
        dist,
        root,
        roots: roots.to_vec(),
    };
    ledger.charge(phase, forest.depth() as u64);
    forest
}

/// Verifies the `(alpha, beta)` ruling properties (test/bench helper).
pub fn is_ruling_set(g: &Graph, set: &[NodeId], alpha: usize, beta: usize) -> bool {
    if g.n() == 0 {
        return set.is_empty();
    }
    if set.is_empty() {
        return false;
    }
    // Separation: pairwise distance >= alpha.
    for &u in set {
        let d = bfs::distances(g, u);
        for &v in set {
            if v != u && (d[v.index()] as usize) < alpha {
                return false;
            }
        }
    }
    // Domination: every node within beta (within its component; nodes in
    // components without ruling nodes fail the check).
    let dist = bfs::multi_source_distances(g, set);
    dist.iter()
        .all(|&d| d != bfs::UNREACHABLE && (d as usize) <= beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_graphs::generators;

    #[test]
    fn randomized_ruling_set_properties() {
        for alpha in [2usize, 3, 5] {
            let g = generators::random_regular(300, 4, 11);
            let mut ledger = RoundLedger::new();
            let set = ruling_set_randomized(&g, alpha, 3, &mut ledger, "rs");
            assert!(is_ruling_set(&g, &set, alpha, alpha - 1), "alpha {alpha}");
        }
    }

    #[test]
    fn deterministic_ruling_set_properties() {
        for g in [
            generators::cycle(64),
            generators::random_regular(400, 4, 2),
            generators::random_tree(200, 3),
        ] {
            let mut ledger = RoundLedger::new();
            let set = ruling_set_deterministic(&g, &mut ledger, "rs");
            let beta = 2 * (g.n().ilog2() as usize + 1);
            assert!(is_ruling_set(&g, &set, 2, beta));
            assert!(ledger.total() <= 3 * (g.n().ilog2() as u64 + 2) + 1);
            // The construction is engine-backed: its candidate floods
            // are measured, not estimated.
            assert!(ledger.bits_sent() > 0);
            assert!(ledger.max_edge_bits() > 0);
        }
    }

    #[test]
    fn deterministic_alpha_ruling_set() {
        let g = generators::cycle(100);
        let mut ledger = RoundLedger::new();
        let set = ruling_set_deterministic_alpha(&g, 4, &mut ledger, "rs");
        let beta = 3 * 2 * (g.n().ilog2() as usize + 1) + 3;
        assert!(is_ruling_set(&g, &set, 4, beta));
        assert!(ledger.bits_sent() > 0);
        assert_eq!(ledger.total(), 3 * (g.n().ilog2() as u64 + 1));
    }

    #[test]
    fn forest_assigns_everyone() {
        let g = generators::torus(8, 8);
        let mut ledger = RoundLedger::new();
        let set = ruling_set_randomized(&g, 3, 1, &mut ledger, "rs");
        let forest = ruling_forest(&g, &set, &mut ledger, "forest");
        assert!(forest.root.iter().all(Option::is_some));
        assert!(forest.depth() <= 2); // (3,2) ruling set
        for &r in &forest.roots {
            assert_eq!(forest.dist[r.index()], 0);
            assert_eq!(forest.root[r.index()], Some(r));
        }
    }

    #[test]
    fn is_ruling_set_rejects_bad_sets() {
        let g = generators::path(6);
        // Adjacent pair violates alpha=2... it doesn't; alpha=2 means
        // distance >= 2, i.e. non-adjacent.
        assert!(!is_ruling_set(&g, &[NodeId(0), NodeId(1)], 2, 5));
        // Far-apart singleton dominates only within 5.
        assert!(is_ruling_set(&g, &[NodeId(0)], 2, 5));
        assert!(!is_ruling_set(&g, &[NodeId(0)], 2, 3));
        assert!(!is_ruling_set(&g, &[], 2, 3));
    }

    #[test]
    fn singleton_graph() {
        let g = Graph::empty(1);
        let mut ledger = RoundLedger::new();
        let set = ruling_set_deterministic(&g, &mut ledger, "rs");
        assert_eq!(set, vec![NodeId(0)]);
    }
}
