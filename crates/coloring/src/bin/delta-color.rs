//! `delta-color` — Δ-color a graph file from the command line.
//!
//! ```text
//! delta-color [--strategy auto|rand-large|rand-small|det|netdecomp|ps]
//!             [--seed N] [--dot OUT.dot] [--quiet] GRAPH
//! ```
//!
//! `GRAPH` is a DIMACS `.col` file or a whitespace edge list (see
//! `delta_graphs::io`). Prints one `node color` pair per line plus a
//! round-ledger summary on stderr; `--dot` additionally writes a
//! Graphviz rendering.

use delta_coloring::delta::{delta_color, Strategy};
use delta_graphs::io as gio;
use local_model::RoundLedger;
use std::path::PathBuf;

fn main() {
    let mut strategy = Strategy::Auto;
    let mut seed = 0u64;
    let mut dot: Option<PathBuf> = None;
    let mut quiet = false;
    let mut input: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--strategy" => {
                let v = args.next().unwrap_or_default();
                strategy = Strategy::parse(&v).unwrap_or_else(|| {
                    eprintln!(
                        "unknown strategy {v:?}; known: {}",
                        Strategy::NAMES.join(", ")
                    );
                    std::process::exit(2);
                });
            }
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires an integer");
                    std::process::exit(2);
                });
            }
            "--dot" => dot = Some(PathBuf::from(args.next().unwrap_or_default())),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: delta-color [--strategy {}] [--seed N] [--dot OUT.dot] [--quiet] GRAPH",
                    Strategy::NAMES.join("|")
                );
                return;
            }
            other => input = Some(PathBuf::from(other)),
        }
    }
    let Some(path) = input else {
        eprintln!("missing input graph (use --help)");
        std::process::exit(2);
    };
    let g = match gio::load(&path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot load {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    eprintln!("loaded {g:?} from {}", path.display());
    let mut ledger = RoundLedger::new();
    let coloring = match delta_color(&g, strategy, seed, &mut ledger) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot delta-color: {e}");
            std::process::exit(1);
        }
    };
    let colors: Vec<u32> = g
        .nodes()
        .map(|v| coloring.get(v).expect("total coloring").0)
        .collect();
    if !quiet {
        for v in g.nodes() {
            println!("{} {}", v.0, colors[v.index()]);
        }
    }
    eprintln!(
        "valid {}-coloring ({} distinct colors) in {} simulated LOCAL rounds",
        g.max_degree(),
        delta_coloring::verify::colors_used(&coloring),
        ledger.total()
    );
    for (phase, rounds) in ledger.by_phase() {
        eprintln!("  {phase:<28} {rounds}");
    }
    if let Some(out) = dot {
        if let Err(e) = std::fs::write(&out, gio::to_dot(&g, Some(&colors))) {
            eprintln!("cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", out.display());
    }
}
