//! End-to-end validity checks shared by tests, examples, and benches.

use crate::palette::{check_k_coloring, ColoringError, PartialColoring};
use delta_graphs::props;
use delta_graphs::{Graph, NodeId};

/// Validates a total proper Δ-coloring, with Δ taken from the graph.
///
/// # Errors
///
/// The first violation (uncolored node, palette overflow, or
/// monochromatic edge).
pub fn check_delta_coloring(g: &Graph, coloring: &PartialColoring) -> Result<(), ColoringError> {
    check_k_coloring(g, coloring, g.max_degree())
}

/// Why a graph is not *nice* (and hence outside the paper's scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotNice {
    /// The graph is empty or disconnected.
    Disconnected,
    /// The graph is a path.
    Path,
    /// The graph is a cycle.
    Cycle,
    /// The graph is a complete graph.
    Clique,
    /// The maximum degree is below 3.
    DegreeTooSmall,
}

impl std::fmt::Display for NotNice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NotNice::Disconnected => "graph is empty or disconnected",
            NotNice::Path => "graph is a path",
            NotNice::Cycle => "graph is a cycle",
            NotNice::Clique => "graph is a complete graph",
            NotNice::DegreeTooSmall => "maximum degree is below 3",
        };
        f.write_str(s)
    }
}

/// Checks the paper's standing assumption: connected, not a path, not a
/// cycle, not a clique, `Δ >= 3`.
///
/// # Errors
///
/// Returns which niceness condition fails.
pub fn assert_nice(g: &Graph) -> Result<(), NotNice> {
    if g.n() == 0 || !delta_graphs::components::is_connected(g) {
        return Err(NotNice::Disconnected);
    }
    if props::is_path(g) {
        return Err(NotNice::Path);
    }
    if props::is_cycle(g) {
        return Err(NotNice::Cycle);
    }
    if props::is_clique(g) {
        return Err(NotNice::Clique);
    }
    if g.max_degree() < 3 {
        return Err(NotNice::DegreeTooSmall);
    }
    Ok(())
}

/// Number of distinct colors used by a (partial) coloring.
pub fn colors_used(coloring: &PartialColoring) -> usize {
    let mut seen: Vec<u32> = (0..coloring.len())
        .filter_map(|i| coloring.get(NodeId::from_index(i)).map(|c| c.0))
        .collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::Color;
    use delta_graphs::generators;

    #[test]
    fn nice_classification() {
        assert_eq!(assert_nice(&generators::path(5)), Err(NotNice::Path));
        assert_eq!(assert_nice(&generators::cycle(6)), Err(NotNice::Cycle));
        assert_eq!(assert_nice(&generators::complete(5)), Err(NotNice::Clique));
        assert_eq!(
            assert_nice(&generators::cycle(3).disjoint_union(&generators::cycle(3))),
            Err(NotNice::Disconnected)
        );
        assert!(assert_nice(&generators::torus(4, 5)).is_ok());
        assert!(assert_nice(&generators::random_regular(50, 3, 1)).is_ok());
    }

    #[test]
    fn delta_coloring_check() {
        let g = generators::star(3);
        let mut c = PartialColoring::new(4);
        c.set(NodeId(0), Color(0));
        for i in 1..4 {
            c.set(NodeId(i), Color(1));
        }
        assert!(check_delta_coloring(&g, &c).is_ok());
        assert_eq!(colors_used(&c), 2);
        c.set(NodeId(1), Color(3)); // Δ = 3, palette {0,1,2}
        assert!(check_delta_coloring(&g, &c).is_err());
    }
}
