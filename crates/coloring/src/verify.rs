//! End-to-end validity checks shared by tests, examples, and benches.

use crate::palette::{Color, ColoringError, PartialColoring};
use delta_graphs::props;
use delta_graphs::{Graph, NodeId};

/// The complete set of violations a (partial) coloring exhibits against
/// a `k`-coloring contract — not just the first one.
///
/// Produced by [`violations`]. Where [`crate::palette::check_k_coloring`]
/// stops at the first problem, this report enumerates every uncolored
/// node, every palette overflow, and every monochromatic edge, which is
/// what fault detection needs: after an injected fault burst the repair
/// driver re-colors exactly the affected region, so it must know *all*
/// damage sites, with their edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationReport {
    /// The palette size `k` the coloring was checked against.
    pub palette: usize,
    /// Nodes with no color, in node-id order.
    pub uncolored: Vec<NodeId>,
    /// Nodes whose color index is `>= palette`, in node-id order.
    pub out_of_range: Vec<(NodeId, Color)>,
    /// Monochromatic edges `(u, v, shared color)` in the graph's edge
    /// iteration order (`u < v`).
    pub conflicting_edges: Vec<(NodeId, NodeId, Color)>,
}

impl ViolationReport {
    /// True when the coloring is a proper total `k`-coloring.
    pub fn is_clean(&self) -> bool {
        self.uncolored.is_empty()
            && self.out_of_range.is_empty()
            && self.conflicting_edges.is_empty()
    }

    /// Total number of recorded violations of all three kinds.
    pub fn total(&self) -> usize {
        self.uncolored.len() + self.out_of_range.len() + self.conflicting_edges.len()
    }

    /// Every node involved in some violation (uncolored, out of range,
    /// or an endpoint of a conflicting edge), sorted and deduplicated —
    /// the seed set for region repair.
    pub fn affected_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.uncolored.clone();
        out.extend(self.out_of_range.iter().map(|&(v, _)| v));
        for &(u, v, _) in &self.conflicting_edges {
            out.push(u);
            out.push(v);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The first violation in [`crate::palette::check_k_coloring`]'s
    /// historical order: the lowest-id uncolored or out-of-range node,
    /// else the first conflicting edge in edge order.
    pub fn first_error(&self) -> Option<ColoringError> {
        let node_err = match (self.uncolored.first(), self.out_of_range.first()) {
            (Some(&u), Some(&(v, c))) => Some(if u < v {
                ColoringError::Uncolored { node: u }
            } else {
                ColoringError::ColorOutOfRange {
                    node: v,
                    color: c,
                    allowed: self.palette,
                }
            }),
            (Some(&u), None) => Some(ColoringError::Uncolored { node: u }),
            (None, Some(&(v, c))) => Some(ColoringError::ColorOutOfRange {
                node: v,
                color: c,
                allowed: self.palette,
            }),
            (None, None) => None,
        };
        node_err.or_else(|| {
            self.conflicting_edges
                .first()
                .map(|&(u, v, color)| ColoringError::MonochromaticEdge { u, v, color })
        })
    }
}

/// Enumerates **every** violation of a total proper `k`-coloring:
/// uncolored nodes, palette overflows, and monochromatic edges.
///
/// This is the detection half of the fault-recovery loop: run it after
/// a fault burst, feed [`ViolationReport::affected_nodes`] to the
/// repair driver, and run it again afterwards to certify recovery.
pub fn violations(g: &Graph, coloring: &PartialColoring, k: usize) -> ViolationReport {
    let mut report = ViolationReport {
        palette: k,
        uncolored: Vec::new(),
        out_of_range: Vec::new(),
        conflicting_edges: Vec::new(),
    };
    for v in g.nodes() {
        match coloring.get(v) {
            None => report.uncolored.push(v),
            Some(c) if c.index() >= k => report.out_of_range.push((v, c)),
            _ => {}
        }
    }
    for (u, v) in g.edges() {
        if let (Some(a), Some(b)) = (coloring.get(u), coloring.get(v)) {
            if a == b {
                report.conflicting_edges.push((u, v, a));
            }
        }
    }
    report
}

/// Validates a total proper Δ-coloring, with Δ taken from the graph.
///
/// Thin wrapper over [`violations`]: builds the full report and
/// surfaces its [`ViolationReport::first_error`].
///
/// # Errors
///
/// The first violation (uncolored node, palette overflow, or
/// monochromatic edge).
pub fn check_delta_coloring(g: &Graph, coloring: &PartialColoring) -> Result<(), ColoringError> {
    match violations(g, coloring, g.max_degree()).first_error() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Why a graph is not *nice* (and hence outside the paper's scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotNice {
    /// The graph is empty or disconnected.
    Disconnected,
    /// The graph is a path.
    Path,
    /// The graph is a cycle.
    Cycle,
    /// The graph is a complete graph.
    Clique,
    /// The maximum degree is below 3.
    DegreeTooSmall,
}

impl std::fmt::Display for NotNice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NotNice::Disconnected => "graph is empty or disconnected",
            NotNice::Path => "graph is a path",
            NotNice::Cycle => "graph is a cycle",
            NotNice::Clique => "graph is a complete graph",
            NotNice::DegreeTooSmall => "maximum degree is below 3",
        };
        f.write_str(s)
    }
}

/// Checks the paper's standing assumption: connected, not a path, not a
/// cycle, not a clique, `Δ >= 3`.
///
/// # Errors
///
/// Returns which niceness condition fails.
pub fn assert_nice(g: &Graph) -> Result<(), NotNice> {
    if g.n() == 0 || !delta_graphs::components::is_connected(g) {
        return Err(NotNice::Disconnected);
    }
    if props::is_path(g) {
        return Err(NotNice::Path);
    }
    if props::is_cycle(g) {
        return Err(NotNice::Cycle);
    }
    if props::is_clique(g) {
        return Err(NotNice::Clique);
    }
    if g.max_degree() < 3 {
        return Err(NotNice::DegreeTooSmall);
    }
    Ok(())
}

/// Number of distinct colors used by a (partial) coloring.
pub fn colors_used(coloring: &PartialColoring) -> usize {
    let mut seen: Vec<u32> = (0..coloring.len())
        .filter_map(|i| coloring.get(NodeId::from_index(i)).map(|c| c.0))
        .collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::Color;
    use delta_graphs::generators;

    #[test]
    fn nice_classification() {
        assert_eq!(assert_nice(&generators::path(5)), Err(NotNice::Path));
        assert_eq!(assert_nice(&generators::cycle(6)), Err(NotNice::Cycle));
        assert_eq!(assert_nice(&generators::complete(5)), Err(NotNice::Clique));
        assert_eq!(
            assert_nice(&generators::cycle(3).disjoint_union(&generators::cycle(3))),
            Err(NotNice::Disconnected)
        );
        assert!(assert_nice(&generators::torus(4, 5)).is_ok());
        assert!(assert_nice(&generators::random_regular(50, 3, 1)).is_ok());
    }

    #[test]
    fn delta_coloring_check() {
        let g = generators::star(3);
        let mut c = PartialColoring::new(4);
        c.set(NodeId(0), Color(0));
        for i in 1..4 {
            c.set(NodeId(i), Color(1));
        }
        assert!(check_delta_coloring(&g, &c).is_ok());
        assert_eq!(colors_used(&c), 2);
        c.set(NodeId(1), Color(3)); // Δ = 3, palette {0,1,2}
        assert!(check_delta_coloring(&g, &c).is_err());
    }

    #[test]
    fn violations_enumerates_everything() {
        // Path 0-1-2-3 with palette 2: node 0 uncolored, node 3 out of
        // range, edge (1,2) monochromatic.
        let g = generators::path(4);
        let mut c = PartialColoring::new(4);
        c.set(NodeId(1), Color(0));
        c.set(NodeId(2), Color(0));
        c.set(NodeId(3), Color(5));
        let report = violations(&g, &c, 2);
        assert!(!report.is_clean());
        assert_eq!(report.total(), 3);
        assert_eq!(report.uncolored, vec![NodeId(0)]);
        assert_eq!(report.out_of_range, vec![(NodeId(3), Color(5))]);
        assert_eq!(
            report.conflicting_edges,
            vec![(NodeId(1), NodeId(2), Color(0))]
        );
        assert_eq!(
            report.affected_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        // first_error matches check_k_coloring's historical order: the
        // lowest-id node problem wins over any edge conflict.
        assert_eq!(
            report.first_error(),
            Some(ColoringError::Uncolored { node: NodeId(0) })
        );
    }

    #[test]
    fn first_error_agrees_with_check_k_coloring() {
        use crate::palette::check_k_coloring;
        let g = generators::random_regular(40, 3, 7);
        for seed in 0..12u64 {
            // Deterministically damage a few nodes in three ways.
            let mut c = PartialColoring::new(g.n());
            for v in g.nodes() {
                c.set(v, Color((v.0 * 7 + seed as u32) % 3));
            }
            for j in 0..3u64 {
                let v = NodeId(((seed * 13 + j * 17) % g.n() as u64) as u32);
                match (seed + j) % 3 {
                    0 => c.unset(v),
                    1 => c.set(v, Color(9)),
                    _ => {
                        if let Some(&u) = g.neighbors(v).first() {
                            if let Some(cu) = c.get(u) {
                                c.set(v, cu);
                            }
                        }
                    }
                }
            }
            let report = violations(&g, &c, 3);
            assert_eq!(
                report.first_error(),
                check_k_coloring(&g, &c, 3).err(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn clean_report_is_clean() {
        let g = generators::torus(4, 5);
        let mut c = PartialColoring::new(g.n());
        // Torus(4,5) is 4-regular and bipartite-ish under (x+y) parity?
        // Just 2-color by coordinate parity of the generator's layout is
        // fragile; use a greedy proper coloring instead.
        for v in g.nodes() {
            let used = c.neighbor_colors(&g, v);
            let free = (0..).map(Color).find(|x| !used.contains(x)).unwrap();
            c.set(v, free);
        }
        let report = violations(&g, &c, g.max_degree() + 1);
        assert!(report.is_clean());
        assert_eq!(report.first_error(), None);
        assert!(report.affected_nodes().is_empty());
    }
}
