//! # delta-coloring
//!
//! A faithful implementation of **"Improved Distributed Δ-Coloring"**
//! (Ghaffari, Hirvonen, Kuhn, Maus; PODC 2018) on top of the
//! LOCAL-model message-passing engine in the `local-model` crate: the
//! round-structured substrates (Luby MIS, Linial color reduction,
//! randomized list coloring, color-class reduction, the marking
//! process) execute as node programs with broadcast and per-neighbor
//! messages, and every algorithm charges its LOCAL rounds to a
//! [`local_model::RoundLedger`].
//!
//! By Brooks' theorem, every connected graph that is neither a complete
//! graph nor an odd cycle admits a coloring with Δ colors (the maximum
//! degree) — one color fewer than the trivial greedy bound. Computing
//! such a coloring *distributively* is fundamentally harder than
//! `(Δ+1)`-coloring: partial Δ-colorings cannot always be extended
//! without recoloring. This crate implements the paper's algorithms and
//! every substrate they stand on:
//!
//! Every protocol message type implements
//! [`local_model::WireCodec`] — a bit-exact wire format with a
//! `max_bits(graph_params)` bound — and the engine charges each
//! transmission's exact size, so every run reports its CONGEST-style
//! bandwidth footprint alongside its round count. Since the
//! ball-collection subsystem ([`local_model::ball`]) landed, the
//! neighborhood-inspection phases execute as real message-passing
//! programs too: ruling sets flood candidate ids level by level
//! (`local_model::run_reach_phase`), the marking process runs its
//! backoff flood, radius-2 pick probes, and mark placement on the
//! engine, and DCC detection assembles radius-`r` views from relayed
//! adjacency certificates ([`gallai::find_dccs_all`]) — their rounds
//! and per-edge bits in the tables are **measured**, not estimated.
//! Since the virtual-topology overlay ([`local_model::overlay`])
//! landed, phases on **derived topologies** execute through the host
//! engine too: Luby MIS on `G^{α-1}` runs on the `PowerOverlay` (one
//! virtual round = `α-1` measured relay rounds; no power graph is ever
//! materialized), the randomized driver's remainder-graph marking and
//! per-component CDCC detection run on the `InducedOverlay`
//! (non-members silent), and the layering technique colors its todo
//! subgraphs the same way. The [`bandwidth`] module classifies each
//! substrate against the `O(log n)` per-edge budget and records both
//! how it executes under CONGEST enforcement (`congest-feasible`
//! messages fit the budget natively; `congest-enforced` ones run
//! fragmented onto it by [`local_model::congest`] while a
//! [`local_model::enforce_congest`] guard is live; `local` marks
//! internal materialization layers whose logical level is enforced
//! instead) and how its numbers are obtained; the verdicts below are
//! for the implemented wire formats (see each message type's docs for
//! why):
//!
//! | Module | Contents | Paper reference | Bandwidth | CONGEST execution | Measurement |
//! |---|---|---|---|---|---|
//! | [`palette`] | colors, partial colorings, lists, validity checks | — | — | — | — |
//! | [`linial`] | `O(Δ²)` coloring in `O(log* n)` rounds | \[Lin92\], used for symmetry breaking | CONGEST-feasible | congest-feasible | engine (measured) |
//! | [`reduce`] | color-class reduction to `Δ+1` | — | CONGEST-feasible | congest-feasible | engine (measured) |
//! | [`mis`] | Luby's MIS, on the host graph and on `G^k`/`(G[S])^k` overlays | Lemma 20 substrate | CONGEST-feasible (host); LOCAL-only on overlays | congest-feasible | engine (measured) |
//! | [`ruling`] | ruling sets and ruling forests | Lemma 20 | LOCAL-only (power-graph relays) | congest-enforced | engine (measured): bit-halving reach-floods + Luby on the `G^k` overlay |
//! | [`list_coloring`] | `(deg+1)`-list coloring, randomized & deterministic | Theorems 18, 19 | CONGEST-feasible | congest-feasible | engine (measured); randomized also on the induced overlay |
//! | [`gallai`] | degree-choosable components, Gallai trees, the degree-list solver | Definitions 6–9, Theorem 8 | LOCAL-only (ball relays) | congest-enforced | engine (measured) via [`gallai::find_dccs_all`] / [`gallai::find_dccs_all_within`] |
//! | [`brooks`] | sequential Brooks & the distributed Brooks repair | Theorem 5, Lemma 16 | LOCAL-only (ball probes) | congest-enforced | mixed: radius-2 probe engine-backed, deepening + walk central |
//! | [`layering`] | the layering technique | Section 3 | CONGEST-feasible | congest-feasible | mixed: todo-subgraph coloring on the induced overlay, BFS waves central |
//! | [`marking`] | the marking process and T-nodes | Section 2.2, phase (4) | LOCAL-only (backoff flood) | congest-enforced | engine (measured), incl. [`marking::marking_process_within`] on the induced overlay |
//! | [`decomp`] | MPX network decomposition | \[PS92\]/\[AGLP89\] substitute | CONGEST-feasible | congest-feasible | central (charged) |
//! | [`delta`] | the headline algorithms | Theorems 1, 3, 4 | LOCAL-only (inherit detection/repairs) | congest-enforced | mixed |
//! | [`baseline`] | `(Δ+1)` baseline and a PS-style Δ-coloring baseline | \[PS92, PS95\] | — | — | mixed |
//! | [`verify`] | end-to-end validity checking, full violation reports | — | — | — | — |
//! | [`repair`] | detection + self-healing of damaged colorings | Theorem 5, Lemma 16 | LOCAL-only (ball probes) | congest-enforced | mixed: inherits the Brooks repair |
//! | [`bandwidth`] | CONGEST-feasibility + execution registry of all of the above | cf. KMW | — | — | — |
//!
//! Phases that remain genuinely centralized (with charged round
//! estimates): the layering/boundary BFS waves, MPX decomposition, the
//! virtual minor graphs of phases (2)/(6) (GDCC/CDCC rulings — their
//! nodes are *sets* of host nodes, so they are not induced subgraphs
//! and need leader simulation to compile), and the Brooks repair's
//! deep doubling probes and token walk. Charged phases are untouched
//! by CONGEST enforcement (no wire traffic to fragment); everything
//! engine-backed runs through [`local_model::compile`], so a single
//! `enforce_congest` guard around a headline driver yields a run whose
//! ledger counts honest `O(log n)`-bit wire rounds with **zero**
//! congest violations and the bit-identical coloring.
//!
//! # Quickstart
//!
//! ```
//! use delta_coloring::delta::{delta_color_rand, RandConfig};
//! use delta_coloring::verify::check_delta_coloring;
//! use delta_graphs::generators;
//! use local_model::RoundLedger;
//!
//! // A random 4-regular graph: Δ-colorable with 4 colors by Brooks.
//! let g = generators::random_regular(500, 4, 42);
//! let mut ledger = RoundLedger::new();
//! let config = RandConfig::large_delta(&g, 42);
//! let (coloring, stats) = delta_color_rand(&g, config, &mut ledger).unwrap();
//! check_delta_coloring(&g, &coloring).unwrap();
//! println!("colored in {} simulated LOCAL rounds ({} attempts)", ledger.total(), stats.attempts);
//! ```

pub mod bandwidth;
pub mod baseline;
pub mod brooks;
pub mod decomp;
pub mod delta;
pub mod gallai;
pub mod layering;
pub mod linial;
pub mod list_coloring;
pub mod marking;
pub mod mis;
pub mod palette;
pub mod reduce;
pub mod repair;
pub mod ruling;
pub mod verify;

pub use palette::{Color, ColoringError, Lists, PartialColoring};
