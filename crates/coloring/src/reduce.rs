//! Iterated color-class reduction: shrink a proper `m`-coloring to a
//! `(Δ+1)`-coloring (or solve list instances) by processing one color
//! class per round.
//!
//! Because every color class is an independent set, all its nodes can
//! simultaneously re-pick a free color in one round. This is the
//! standard `O(m)`-round reduction used as our stand-in for the
//! locally-iterative list-coloring subroutines the paper cites (see
//! DESIGN.md §4 on substitutions).

use crate::palette::PartialColoring;
use delta_graphs::Graph;
use local_model::wire::{gamma_bits, gamma_max_bits};
use local_model::{
    compile, BitReader, BitWriter, Engine, Outbox, RoundDriver, RoundLedger, WireCodec, WireParams,
};

/// Wire format of color-class reduction: each node gamma-codes its
/// current color, which is bounded by the input color count (the
/// `palette` wire parameter — `O(Δ²)` when fed from Linial), so the
/// substrate is CONGEST-feasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceMsg {
    /// "My current color is `c`."
    Color(u32),
}

impl WireCodec for ReduceMsg {
    fn encode(&self, w: &mut BitWriter) {
        let ReduceMsg::Color(c) = self;
        w.write_gamma(*c as u64);
    }
    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        r.read_gamma().map(|c| ReduceMsg::Color(c as u32))
    }
    fn encoded_bits(&self) -> u64 {
        let ReduceMsg::Color(c) = self;
        gamma_bits(*c as u64)
    }
    fn max_bits(p: &WireParams) -> Option<u64> {
        Some(gamma_max_bits(p.palette))
    }
}

/// Reduces a proper coloring with colors `>= target` down to colors
/// `< target`, one class per round, charged to `phase`.
///
/// Requires `target >= Δ+1` so that a free color always exists.
///
/// # Panics
///
/// Panics (debug assertions) if the input coloring is improper or
/// `target <= Δ`.
pub fn reduce_colors(
    g: &Graph,
    colors: &mut [u32],
    target: usize,
    ledger: &mut RoundLedger,
    phase: &str,
) {
    debug_assert!(target > g.max_degree(), "target must be at least Δ+1");
    let m = colors.iter().max().map(|&c| c as usize + 1).unwrap_or(0);
    if m <= target {
        return;
    }
    // One engine round per class, top color down: the class is an
    // independent set, so all its nodes re-pick simultaneously from the
    // colors their neighbors broadcast. Deterministic; seed irrelevant.
    let mut engine = compile(Engine::new(g, 0, |v| colors[v.index()]));
    for class in (target..m).rev() {
        engine.round_step(
            ledger,
            phase,
            |_, c: &mut u32, out: &mut Outbox<ReduceMsg>| out.broadcast(ReduceMsg::Color(*c)),
            move |_, c, inbox| {
                if *c as usize != class {
                    return;
                }
                let mut used = vec![false; target];
                for &(_, ReduceMsg::Color(cw)) in inbox {
                    if (cw as usize) < target {
                        used[cw as usize] = true;
                    }
                }
                let free = used
                    .iter()
                    .position(|&u| !u)
                    .expect("free color exists since target > Δ");
                *c = free as u32;
            },
        );
    }
    colors.copy_from_slice(&engine.into_node_states());
}

/// Converts a per-node `u32` color slice into a total [`PartialColoring`].
pub fn to_partial(colors: &[u32]) -> PartialColoring {
    PartialColoring::from_total(colors)
}

/// Computes a `(Δ+1)`-coloring deterministically: Linial to `O(Δ²)`
/// colors, then class-by-class reduction. `O(Δ²+ log* n)` rounds.
pub fn deterministic_delta_plus_one(
    g: &Graph,
    ledger: &mut RoundLedger,
    phase: &str,
) -> PartialColoring {
    let mut colors = crate::linial::linial_coloring(g, ledger, phase);
    reduce_colors(g, &mut colors, g.max_degree() + 1, ledger, phase);
    let out = PartialColoring::from_total(&colors);
    debug_assert!(out.validate_proper(g).is_ok());
    out
}

/// Groups nodes by color, producing the round schedule used by the
/// deterministic list-coloring subroutine: class `c` at index `c`.
pub fn color_classes(colors: &[u32]) -> Vec<Vec<delta_graphs::NodeId>> {
    let m = colors.iter().max().map(|&c| c as usize + 1).unwrap_or(0);
    let mut classes = vec![Vec::new(); m];
    for (i, &c) in colors.iter().enumerate() {
        classes[c as usize].push(delta_graphs::NodeId::from_index(i));
    }
    classes
}

/// Checks that `colors` is a proper coloring (test helper, exported for
/// integration tests and benches).
pub fn is_proper(g: &Graph, colors: &[u32]) -> bool {
    g.edges()
        .all(|(u, v)| colors[u.index()] != colors[v.index()])
}

/// Largest color index plus one (0 for empty input).
pub fn color_count(colors: &[u32]) -> usize {
    colors.iter().max().map(|&c| c as usize + 1).unwrap_or(0)
}

/// Extension trait: number of *distinct* colors in use.
pub fn distinct_colors(colors: &[u32]) -> usize {
    let mut sorted: Vec<u32> = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_graphs::generators;
    use local_model::RoundLedger;

    #[test]
    fn reduce_from_ids() {
        let g = generators::torus(5, 5);
        let mut colors: Vec<u32> = (0..g.n() as u32).collect();
        let mut ledger = RoundLedger::new();
        reduce_colors(&g, &mut colors, 5, &mut ledger, "reduce");
        assert!(is_proper(&g, &colors));
        assert!(color_count(&colors) <= 5);
        assert_eq!(ledger.total(), (g.n() - 5) as u64);
    }

    #[test]
    fn reduce_noop_if_already_small() {
        let g = generators::cycle(6);
        let mut colors = vec![0, 1, 0, 1, 0, 1];
        let mut ledger = RoundLedger::new();
        reduce_colors(&g, &mut colors, 3, &mut ledger, "reduce");
        assert_eq!(colors, vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(ledger.total(), 0);
    }

    #[test]
    fn deterministic_delta_plus_one_on_families() {
        for g in [
            generators::random_regular(400, 4, 2),
            generators::torus(8, 9),
            generators::random_tree(300, 7),
            generators::hypercube(5),
        ] {
            let mut ledger = RoundLedger::new();
            let c = deterministic_delta_plus_one(&g, &mut ledger, "d1");
            crate::palette::check_k_coloring(&g, &c, g.max_degree() + 1).unwrap();
            // Rounds: O(Δ² + log* n), independent of n.
            let bound = crate::linial::linial_color_bound(g.max_degree()) as u64 + 32;
            assert!(
                ledger.total() < bound,
                "rounds {} vs bound {bound}",
                ledger.total()
            );
        }
    }

    #[test]
    fn classes_partition_nodes() {
        let colors = vec![2, 0, 1, 0];
        let classes = color_classes(&colors);
        assert_eq!(classes.len(), 3);
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
        assert_eq!(classes[0].len(), 2);
    }

    #[test]
    fn distinct_and_count() {
        let colors = vec![5, 5, 2];
        assert_eq!(color_count(&colors), 6);
        assert_eq!(distinct_colors(&colors), 2);
        assert_eq!(color_count(&[]), 0);
    }
}
