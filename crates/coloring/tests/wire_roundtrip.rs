//! Property tests for every protocol [`WireCodec`]: exact roundtrips
//! (`decode(encode(m)) == m`, consuming every bit), size honesty
//! (`encode` writes exactly `encoded_bits(m)` bits), and bound
//! soundness (`encoded_bits(m) <= max_bits(p)` for every message the
//! protocol can legally send at parameters `p`).

use delta_coloring::brooks::BrooksMsg;
use delta_coloring::decomp::DecompMsg;
use delta_coloring::delta::{DetMsg, NetDecompMsg, RandMsg, SlocalMsg};
use delta_coloring::gallai::GallaiMsg;
use delta_coloring::layering::LayerMsg;
use delta_coloring::linial::LinialMsg;
use delta_coloring::list_coloring::LcMsg;
use delta_coloring::marking::MkMsg;
use delta_coloring::mis::{draw_domain, MisMsg};
use delta_coloring::palette::Color;
use delta_coloring::reduce::ReduceMsg;
use delta_coloring::ruling::RulingMsg;
use local_model::wire::{decode_from_bytes, encode_to_bytes};
use local_model::{WireCodec, WireParams};
use proptest::prelude::*;

fn roundtrip<M: WireCodec + PartialEq + std::fmt::Debug>(m: &M) {
    let (bytes, bits) = encode_to_bytes(m);
    assert_eq!(bits, m.encoded_bits(), "size honesty for {m:?}");
    let back: M = decode_from_bytes(&bytes, bits).unwrap_or_else(|| panic!("roundtrip of {m:?}"));
    assert_eq!(&back, m);
}

/// Checks `encoded_bits <= max_bits` for a message legal at `p`.
fn bounded<M: WireCodec + std::fmt::Debug>(m: &M, p: &WireParams) {
    let bound = M::max_bits(p).expect("bounded message family");
    assert!(
        m.encoded_bits() <= bound,
        "{m:?}: {} bits exceeds max_bits {bound}",
        m.encoded_bits()
    );
}

fn params(n: u64, delta: u64) -> WireParams {
    WireParams {
        n,
        max_degree: delta,
        palette: delta + 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn mis_messages(n in 4u64..1 << 24, sel in 0u64..u64::MAX, id in 0u64..1 << 24) {
        let p = params(n, 4);
        let m = MisMsg::Draw { value: sel % draw_domain(n), tiebreak: (id % n) as u32 };
        roundtrip(&m);
        bounded(&m, &p);
        roundtrip(&MisMsg::Joined);
        bounded(&MisMsg::Joined, &p);
    }

    #[test]
    fn linial_messages(n in 4u64..1 << 24, delta in 3u64..16, sel in 0u64..u64::MAX) {
        let p = params(n, delta);
        // Legal colors: below the initial id space (later rounds only
        // shrink the domain).
        let m = LinialMsg::Color(sel % n);
        roundtrip(&m);
        bounded(&m, &p);
    }

    #[test]
    fn reduce_and_list_messages(palette in 2u64..1 << 16, sel in 0u64..u64::MAX, colored in proptest::bool::ANY) {
        let p = params(1 << 14, 4).with_palette(palette);
        let rm = ReduceMsg::Color((sel % palette) as u32);
        roundtrip(&rm);
        bounded(&rm, &p);
        let c = Color((sel % palette) as u32);
        let lm = if colored { LcMsg::Colored(c) } else { LcMsg::Propose(c) };
        roundtrip(&lm);
        bounded(&lm, &p);
    }

    #[test]
    fn layer_and_decomp_messages(n in 4u64..1 << 24, sel in 0u64..u64::MAX, key in 0u64..u64::MAX) {
        let p = params(n, 4);
        let lm = LayerMsg::Layer((sel % n) as u32);
        roundtrip(&lm);
        bounded(&lm, &p);
        let dm = DecompMsg::Offer { key, center: (sel % n) as u32 };
        roundtrip(&dm);
        bounded(&dm, &p);
    }

    #[test]
    fn marking_placement_messages(n in 4u64..1 << 24, sel in 0u64..u64::MAX) {
        // The propose/claim/accept rounds are bounded control traffic
        // (the marking flood itself travels as local_model::ReachMsg).
        let p = params(n, 4);
        for m in [MkMsg::Propose, MkMsg::Claim((sel % n) as u32), MkMsg::Accept] {
            roundtrip(&m);
            bounded(&m, &p);
        }
    }

    #[test]
    fn ball_subsystem_relays_roundtrip(ids in proptest::collection::vec(0u32..1 << 24, 0..24), flag in proptest::bool::ANY) {
        use local_model::ball::BallItem;
        use local_model::{BallMsg, CenterMsg, ReachMsg};
        let p = params(1 << 14, 4);
        let items: Vec<BallItem<bool>> = ids
            .iter()
            .map(|&id| BallItem { id, adj: ids.clone(), payload: flag })
            .collect();
        roundtrip(&BallMsg(items));
        prop_assert!(BallMsg::<bool>::max_bits(&p).is_none());
        let reach = ReachMsg(ids.iter().map(|&id| (id, ())).collect());
        roundtrip(&reach);
        prop_assert!(ReachMsg::<()>::max_bits(&p).is_none());
        let probe = CenterMsg {
            probe_ttl: flag.then_some(ids.len() as u32),
            items: vec![],
        };
        roundtrip(&probe);
        prop_assert!(CenterMsg::max_bits(&p).is_none());
    }

    #[test]
    fn unbounded_families_roundtrip(ids in proptest::collection::vec(0u32..1 << 24, 0..40), color in 0u32..1 << 12) {
        let p = params(1 << 14, 4);
        // Ruling candidate/relay.
        roundtrip(&RulingMsg::Candidate(color));
        roundtrip(&RulingMsg::Relay(ids.clone()));
        prop_assert!(RulingMsg::max_bits(&p).is_none());
        // Ball relays.
        let edges: Vec<(u32, u32)> = ids.iter().map(|&a| (a, a.wrapping_add(1))).collect();
        let gm = GallaiMsg::BallEdges(edges);
        roundtrip(&gm);
        prop_assert!(GallaiMsg::max_bits(&p).is_none());
        // Brooks repair messages.
        roundtrip(&BrooksMsg::Probe(gm.clone()));
        roundtrip(&BrooksMsg::Shift(color));
        roundtrip(&BrooksMsg::Assign(color));
        prop_assert!(BrooksMsg::max_bits(&p).is_none());
    }

    #[test]
    fn driver_unions_roundtrip(ids in proptest::collection::vec(0u32..1 << 20, 0..20), color in 0u32..1 << 10, key in 0u64..u64::MAX) {
        let p = params(1 << 14, 4);
        let rand_msgs = [
            RandMsg::Detect(GallaiMsg::BallEdges(ids.iter().map(|&a| (a, a ^ 1)).collect())),
            RandMsg::Ruling(MisMsg::Draw { value: key % draw_domain(1 << 14), tiebreak: color }),
            RandMsg::Marking(MkMsg::Claim(color)),
            RandMsg::Layer(LayerMsg::Layer(color)),
            RandMsg::List(LcMsg::Propose(Color(color))),
        ];
        for m in &rand_msgs {
            roundtrip(m);
        }
        prop_assert!(RandMsg::max_bits(&p).is_none());
        let det_msgs = [
            DetMsg::Linial(LinialMsg::Color(color as u64)),
            DetMsg::Ruling(RulingMsg::Relay(ids.clone())),
            DetMsg::Layer(LayerMsg::Layer(color)),
            DetMsg::List(LcMsg::Colored(Color(color))),
            DetMsg::Repair(BrooksMsg::Shift(color)),
        ];
        for m in &det_msgs {
            roundtrip(m);
        }
        prop_assert!(DetMsg::max_bits(&p).is_none());
        let nd_msgs = [
            NetDecompMsg::Decomp(DecompMsg::Offer { key, center: color }),
            NetDecompMsg::Layer(LayerMsg::Layer(color)),
            NetDecompMsg::List(LcMsg::Propose(Color(color))),
            NetDecompMsg::Repair(BrooksMsg::Assign(color)),
        ];
        for m in &nd_msgs {
            roundtrip(m);
        }
        prop_assert!(NetDecompMsg::max_bits(&p).is_none());
        let sl_msgs = [
            SlocalMsg::Commit(color),
            SlocalMsg::Repair(BrooksMsg::Probe(GallaiMsg::BallEdges(vec![]))),
        ];
        for m in &sl_msgs {
            roundtrip(m);
        }
        prop_assert!(SlocalMsg::max_bits(&p).is_none());
    }

    #[test]
    fn bounded_substrates_fit_the_congest_budget(n in 16u64..1 << 26, delta in 3u64..32) {
        use delta_coloring::bandwidth::{classify, BandwidthClass};
        let p = params(n, delta);
        for row in classify(&p) {
            if let Some(b) = row.max_bits {
                prop_assert_eq!(
                    row.class == BandwidthClass::Congest,
                    b <= local_model::congest_budget(n),
                    "{} misclassified", row.name
                );
            } else {
                prop_assert_eq!(row.class, BandwidthClass::LocalOnly, "{}", row.name);
            }
        }
    }
}
