//! Self-healing under injected faults: after any single-round fault
//! burst, [`repair_region`] restores a valid Δ-coloring, and it does so
//! *deterministically* — identical damage yields identical post-repair
//! colorings and reports under both [`ExecMode`]s (the repair's ball
//! probes run engine-backed, so this pins the whole detection + healing
//! path, not just the arithmetic).

use delta_coloring::brooks::brooks_color;
use delta_coloring::palette::{Color, PartialColoring};
use delta_coloring::repair::{repair_region, RepairReport};
use delta_coloring::verify::{check_delta_coloring, violations};
use delta_graphs::{generators, Graph, NodeId};
use local_model::{
    force_exec_mode, Engine, ExecMode, FaultPlan, FaultyDriver, Outbox, RoundDriver, RoundLedger,
};
use proptest::prelude::*;

/// Applies a seeded single-round fault burst to a valid Δ-coloring:
/// each damage site either loses its color (a crashed node rebooting),
/// gets an out-of-palette color (a corrupted payload written back), or
/// copies a neighbor's color (a stale update applied after a drop).
fn damage(g: &Graph, c: &mut PartialColoring, sites: &[(u32, u8)]) {
    for &(raw, action) in sites {
        let v = NodeId(raw % g.n() as u32);
        match action % 3 {
            0 => c.unset(v),
            1 => c.set(v, Color(g.max_degree() as u32 + 1 + raw % 7)),
            _ => {
                if let Some(cw) = g.neighbors(v).first().and_then(|&w| c.get(w)) {
                    c.set(v, cw);
                }
            }
        }
    }
}

fn repair_under(
    mode: ExecMode,
    g: &Graph,
    base: &PartialColoring,
    sites: &[(u32, u8)],
) -> (PartialColoring, RepairReport, u64) {
    let _guard = force_exec_mode(mode);
    let mut c = base.clone();
    damage(g, &mut c, sites);
    let mut ledger = RoundLedger::new();
    let report = repair_region(g, &mut c, g.max_degree(), &mut ledger, "repair")
        .expect("nice graph: repair cannot fail");
    (c, report, ledger.total())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn repair_restores_validity_deterministically(
        graph_seed in 0u64..10,
        sites in proptest::collection::vec((0u32..1 << 16, 0u8..255), 1..8),
    ) {
        let g = generators::random_regular(72, 4, graph_seed);
        let base = brooks_color(&g, 4).expect("nice 4-regular graph");
        let seq = repair_under(ExecMode::Sequential, &g, &base, &sites);
        let par = repair_under(ExecMode::Parallel, &g, &base, &sites);
        prop_assert!(check_delta_coloring(&g, &seq.0).is_ok(), "repair left damage");
        prop_assert_eq!(&seq, &par, "repair diverged across exec modes");
        let report = seq.1;
        prop_assert_eq!(seq.2, report.rounds_to_recover);
        prop_assert!(
            report.colors_changed == 0 || report.repairs > 0,
            "colors changed without any repair running"
        );
    }
}

#[test]
fn faulty_maintenance_round_is_detected_and_healed() {
    // End-to-end: a real engine program runs one maintenance round
    // under heavy message drops, nodes re-pick colors based on an
    // incomplete view, and the damaged coloring is healed in place.
    //
    // The program: every node broadcasts its color; a node on duty this
    // round (color ≡ round mod palette) re-picks the smallest color it
    // did not hear. Fault-free, a duty class is an independent set, so
    // re-picks never collide; under drops a node can re-pick a color an
    // unheard neighbor holds.
    let g = generators::random_regular(96, 4, 11);
    let delta = 4;
    let base = brooks_color(&g, delta).expect("nice 4-regular graph");
    let plan = FaultPlan::new(77).with_drops(400_000);
    let mut drv = FaultyDriver::new(Engine::new(&g, 0, |v| base.get(v).unwrap().0), plan);
    let mut ledger = RoundLedger::new();
    for round in 0..delta as u32 {
        drv.round_step(
            &mut ledger,
            "maintain",
            |_, &mut s, out: &mut Outbox<u32>| out.broadcast(s),
            move |_, s, inbox| {
                if *s % delta as u32 == round {
                    let heard: Vec<u32> = inbox.iter().map(|&(_, m)| m).collect();
                    *s = (0..).find(|c| !heard.contains(c)).unwrap();
                }
            },
        );
    }
    assert!(drv.fault_counters().dropped > 0, "plan injected nothing");
    let mut after = PartialColoring::new(g.n());
    for (i, &s) in drv.node_states().iter().enumerate() {
        after.set(NodeId::from_index(i), Color(s));
    }
    let damage_report = violations(&g, &after, delta);
    assert!(
        !damage_report.is_clean(),
        "40 % drops over {} rounds caused no damage — pick another seed",
        delta
    );
    let report = repair_region(&g, &mut after, delta, &mut ledger, "repair").unwrap();
    assert!(check_delta_coloring(&g, &after).is_ok());
    assert!(report.repairs > 0);
    assert!(report.rounds_to_recover >= 1);
}

#[test]
fn fault_free_maintenance_never_needs_repair() {
    // The control arm of the test above: with a zero plan the duty-class
    // schedule keeps the coloring proper, so detection finds nothing.
    let g = generators::random_regular(96, 4, 11);
    let delta = 4;
    let base = brooks_color(&g, delta).expect("nice 4-regular graph");
    let mut drv = FaultyDriver::new(
        Engine::new(&g, 0, |v| base.get(v).unwrap().0),
        FaultPlan::none(),
    );
    let mut ledger = RoundLedger::new();
    for round in 0..delta as u32 {
        drv.round_step(
            &mut ledger,
            "maintain",
            |_, &mut s, out: &mut Outbox<u32>| out.broadcast(s),
            move |_, s, inbox| {
                if *s % delta as u32 == round {
                    let heard: Vec<u32> = inbox.iter().map(|&(_, m)| m).collect();
                    *s = (0..).find(|c| !heard.contains(c)).unwrap();
                }
            },
        );
    }
    let mut after = PartialColoring::new(g.n());
    for (i, &s) in drv.node_states().iter().enumerate() {
        after.set(NodeId::from_index(i), Color(s));
    }
    assert!(violations(&g, &after, delta).is_clean());
}
