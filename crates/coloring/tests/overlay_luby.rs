//! Luby MIS on the virtual-topology overlay must be decision-for-
//! decision equal to the materialized power-graph run it replaced.
//!
//! `luby_mis_on_power` executes on the `G^k` overlay (k measured relay
//! rounds per virtual round, nothing materialized); `power_graph` is
//! kept exactly for this comparison: same seed ⇒ same membership mask,
//! `k ×` the round charge, under **both** execution schedules. The
//! `(G[S])^k` composition is pinned against the materialized
//! `power_graph(g.induced(S), k)` the same way.

use delta_coloring::mis::{is_mis, luby_mis, luby_mis_on_power, luby_mis_within_power};
use delta_graphs::power::power_graph;
use delta_graphs::{Graph, NodeId};
use local_model::{force_exec_mode, ExecMode, RoundLedger};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..48).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..3 * n).prop_map(move |pairs| {
            let edges: Vec<(u32, u32)> = pairs.into_iter().filter(|&(a, b)| a != b).collect();
            Graph::from_edges(n, &edges).expect("valid")
        })
    })
}

fn under_both_modes<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) -> T {
    let seq = {
        let _g = force_exec_mode(ExecMode::Sequential);
        f()
    };
    let par = {
        let _g = force_exec_mode(ExecMode::Parallel);
        f()
    };
    assert_eq!(seq, par, "schedules diverged");
    seq
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn overlay_luby_equals_materialized_power_graph_luby(
        g in arb_graph(),
        k in 2usize..5,
        seed in 0u64..1000,
    ) {
        let (overlay_mask, overlay_rounds, overlay_bits) = under_both_modes(|| {
            let mut ledger = RoundLedger::new();
            let mask = luby_mis_on_power(&g, k, seed, &mut ledger, "mis");
            (mask, ledger.total(), ledger.bits_sent())
        });
        let (mat_mask, mat_rounds) = under_both_modes(|| {
            let gk = power_graph(&g, k);
            let mut ledger = RoundLedger::new();
            let mask = luby_mis(&gk, seed, &mut ledger, "mis");
            (mask, ledger.total())
        });
        prop_assert_eq!(&overlay_mask, &mat_mask, "MIS decisions diverged");
        prop_assert_eq!(overlay_rounds, mat_rounds * k as u64, "dilation charge");
        prop_assert!(is_mis(&power_graph(&g, k), &overlay_mask));
        if power_graph(&g, k).m() > 0 {
            prop_assert!(overlay_bits > 0, "relay rounds must be measured");
        }
    }

    #[test]
    fn within_power_luby_equals_materialized_subgraph_power_luby(
        g in arb_graph(),
        k in 2usize..4,
        seed in 0u64..1000,
        stride in 2u32..4,
    ) {
        // Membership: drop every stride-th node.
        let mask: Vec<bool> = g.nodes().map(|v| v.0 % stride != 0).collect();
        if !mask.iter().any(|&b| b) {
            return Ok(());
        }
        let overlay_mask = under_both_modes(|| {
            let mut ledger = RoundLedger::new();
            luby_mis_within_power(&g, &mask, k, seed, &mut ledger, "mis")
        });
        // Materialized oracle: Luby on (G[S])^k, expanded to host ids.
        let members: Vec<NodeId> = g.nodes().filter(|v| mask[v.index()]).collect();
        let (sub, map) = g.induced(&members);
        let mat_rank_mask = under_both_modes(|| {
            let mut ledger = RoundLedger::new();
            luby_mis(&power_graph(&sub, k), seed, &mut ledger, "mis")
        });
        let mut mat_mask = vec![false; g.n()];
        for (r, &sel) in mat_rank_mask.iter().enumerate() {
            if sel {
                mat_mask[map[r].index()] = true;
            }
        }
        prop_assert_eq!(&overlay_mask, &mat_mask, "subgraph MIS decisions diverged");
        // Non-members are never selected.
        for v in g.nodes() {
            if !mask[v.index()] {
                prop_assert!(!overlay_mask[v.index()]);
            }
        }
    }
}
