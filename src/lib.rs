//! Workspace root for the reproduction of *Improved Distributed
//! Δ-Coloring* (Ghaffari, Hirvonen, Kuhn, Maus; PODC 2018).
//!
//! This crate only re-exports the member crates so the repository-level
//! `examples/` and `tests/` can use a single dependency. The actual
//! library code lives in:
//!
//! * [`delta_graphs`] — graphs, generators, structural algorithms;
//! * [`local_model`] — the LOCAL-model message-passing engine
//!   (broadcast + per-neighbor messages, parallel compute phase, round
//!   ledger);
//! * [`delta_coloring`] — the paper's algorithms.

pub use delta_coloring;
pub use delta_graphs;
pub use local_model;
