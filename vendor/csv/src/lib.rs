//! Offline stand-in for the `csv` crate: a minimal RFC-4180 writer.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Buffered CSV record writer.
pub struct Writer<W: Write> {
    inner: W,
}

impl Writer<BufWriter<File>> {
    /// Creates a writer that truncates and writes `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn from_path<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Writer {
            inner: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write> Writer<W> {
    /// Wraps an arbitrary writer.
    pub fn from_writer(inner: W) -> Self {
        Writer { inner }
    }

    /// Writes one record, quoting fields that contain commas, quotes,
    /// or newlines.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_record<I, S>(&mut self, record: I) -> io::Result<()>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut first = true;
        for field in record {
            if !first {
                self.inner.write_all(b",")?;
            }
            first = false;
            let f = field.as_ref();
            if f.contains([',', '"', '\n', '\r']) {
                write!(self.inner, "\"{}\"", f.replace('"', "\"\""))?;
            } else {
                self.inner.write_all(f.as_bytes())?;
            }
        }
        self.inner.write_all(b"\n")
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Writer;

    #[test]
    fn quotes_only_when_needed() {
        let mut w = Writer::from_writer(Vec::new());
        w.write_record(["plain", "with,comma", "with\"quote"])
            .unwrap();
        w.write_record(["second"]).unwrap();
        let out = String::from_utf8(w.inner).unwrap();
        assert_eq!(out, "plain,\"with,comma\",\"with\"\"quote\"\nsecond\n");
    }
}
