//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the call-site syntax (`criterion_group!`, `criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with inputs) and
//! measures wall-clock with a simple adaptive loop: one warm-up call,
//! then iterations until the sample or time budget is spent. Reports
//! mean per-iteration time on stdout. No statistics, plots, or
//! regression tracking — swap in real criterion for those.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Result of one measured benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchReport {
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Iterations measured.
    pub iters: u64,
}

/// Per-benchmark measurement driver handed to `iter` closures.
pub struct Bencher {
    samples: u64,
    time_budget: Duration,
    last: Option<BenchReport>,
}

impl Bencher {
    fn new(samples: u64, time_budget: Duration) -> Self {
        Bencher {
            samples,
            time_budget,
            last: None,
        }
    }

    /// Times `f`, adaptively choosing the iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, not measured
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(f());
            iters += 1;
            if iters >= self.samples || start.elapsed() >= self.time_budget {
                break;
            }
        }
        self.last = Some(BenchReport {
            mean: start.elapsed().div_f64(iters as f64),
            iters,
        });
    }
}

fn measure(label: &str, samples: u64, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(samples, budget);
    f(&mut b);
    match b.last {
        Some(r) => println!(
            "bench {label:<48} {:>12.3?}/iter ({} iters)",
            r.mean, r.iters
        ),
        None => println!("bench {label:<48} (no iter call)"),
    }
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, mirroring criterion's display form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    samples: u64,
    time_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: 20,
            time_budget: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Measures a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        measure(id, self.samples, self.time_budget, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            time_budget: self.time_budget,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    time_budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n as u64;
        self
    }

    /// Measures a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        measure(&label, self.samples, self.time_budget, &mut |b| f(b, input));
        self
    }

    /// Measures an unparameterized benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        measure(&label, self.samples, self.time_budget, &mut f);
        self
    }

    /// Ends the group (formatting no-op in the stand-in).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_mean() {
        let mut b = Bencher::new(5, Duration::from_millis(50));
        let mut count = 0u64;
        b.iter(|| count += 1);
        let report = b.last.expect("report recorded");
        assert!(report.iters >= 1);
        assert!(count >= report.iters); // warm-up adds one
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("trivial", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
