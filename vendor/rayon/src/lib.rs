//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset of the rayon 1.10 API this workspace uses with
//! the same call-site syntax. Parallelism is real: adapters collect
//! their items, split them into per-thread chunks, and execute on
//! scoped `std::thread` threads (one pass per `map`/`for_each`, order
//! preserved). There is no work stealing — throughput is fine for the
//! coarse node-batch and experiment-sweep workloads this workspace
//! runs, but fine-grained irregular loads would not balance as well as
//! under real rayon.

use std::num::NonZeroUsize;

/// Number of worker threads parallel adapters fan out to.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let ha = s.spawn(a);
        let rb = b();
        (
            ha.join().unwrap_or_else(|e| std::panic::resume_unwind(e)),
            rb,
        )
    })
}

/// Applies `f` to every item on scoped worker threads, preserving order.
fn parallel_apply<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

pub mod iter {
    //! Parallel iterator adapters.

    use super::parallel_apply;

    /// A (stand-in) parallel iterator: a pipeline that can realize
    /// itself into an ordered `Vec`, running its `map` stages on worker
    /// threads.
    pub trait ParallelIterator: Sized {
        /// The element type.
        type Item: Send;

        /// Realizes the pipeline, preserving input order.
        fn run(self) -> Vec<Self::Item>;

        /// Parallel element-wise transformation.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        /// Pairs every item with its index.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { base: self }
        }

        /// Pairs items with another parallel iterator's items
        /// (truncates to the shorter side, like `Iterator::zip`).
        fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
            Zip { a: self, b: other }
        }

        /// Runs `f` on every item in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            parallel_apply(self.run(), &|item| f(item));
        }

        /// Realizes the pipeline into any collection.
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.run().into_iter().collect()
        }

        /// Sums the items.
        fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
            self.run().into_iter().sum()
        }
    }

    /// Base source: an already-materialized item list.
    pub struct IntoParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for IntoParIter<T> {
        type Item = T;
        fn run(self) -> Vec<T> {
            self.items
        }
    }

    /// `map` adapter; the stage that actually fans out to threads.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, R, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync,
    {
        type Item = R;
        fn run(self) -> Vec<R> {
            parallel_apply(self.base.run(), &self.f)
        }
    }

    /// `enumerate` adapter.
    pub struct Enumerate<I> {
        base: I,
    }

    impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
        type Item = (usize, I::Item);
        fn run(self) -> Vec<(usize, I::Item)> {
            self.base.run().into_iter().enumerate().collect()
        }
    }

    /// `zip` adapter.
    pub struct Zip<A, B> {
        a: A,
        b: B,
    }

    impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
        type Item = (A::Item, B::Item);
        fn run(self) -> Vec<(A::Item, B::Item)> {
            self.a.run().into_iter().zip(self.b.run()).collect()
        }
    }

    /// Conversion of owned collections into parallel iterators.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = IntoParIter<T>;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = IntoParIter<usize>;
        fn into_par_iter(self) -> IntoParIter<usize> {
            IntoParIter {
                items: self.collect(),
            }
        }
    }

    /// `par_iter` on borrowed slices.
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed element type.
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Parallel iterator over shared references.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = IntoParIter<&'a T>;
        fn par_iter(&'a self) -> IntoParIter<&'a T> {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = IntoParIter<&'a T>;
        fn par_iter(&'a self) -> IntoParIter<&'a T> {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }

    /// `par_iter_mut` on borrowed slices.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The borrowed element type.
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Parallel iterator over exclusive references.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        type Iter = IntoParIter<&'a mut T>;
        fn par_iter_mut(&'a mut self) -> IntoParIter<&'a mut T> {
            IntoParIter {
                items: self.iter_mut().collect(),
            }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        type Iter = IntoParIter<&'a mut T>;
        fn par_iter_mut(&'a mut self) -> IntoParIter<&'a mut T> {
            IntoParIter {
                items: self.iter_mut().collect(),
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn mut_zip_enumerate() {
        let mut a = vec![0u64; 1000];
        let mut b = vec![0u64; 1000];
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .for_each(|(i, (x, y))| {
                *x = i as u64;
                *y = 2 * i as u64;
            });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i as u64));
        assert!(b.iter().enumerate().all(|(i, &y)| y == 2 * i as u64));
    }

    #[test]
    fn range_and_sum() {
        let s: usize = (0..1001usize).into_par_iter().sum();
        assert_eq!(s, 500_500);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn threads_actually_run() {
        // With >1 worker, at least two distinct thread ids should appear
        // for a large enough workload.
        if super::current_num_threads() > 1 {
            let ids: Vec<String> = (0..100_000usize)
                .into_par_iter()
                .map(|_| format!("{:?}", std::thread::current().id()))
                .collect();
            let mut uniq: Vec<String> = ids;
            uniq.sort();
            uniq.dedup();
            assert!(uniq.len() > 1, "no parallel execution observed");
        }
    }
}
