//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.9 API this workspace uses, with
//! the same call-site syntax, so the workspace pin can be repointed at
//! the real crate without source changes. The generator behind
//! [`rngs::StdRng`] is xoshiro256\*\* seeded through SplitMix64 — a
//! different stream than the real `StdRng` (ChaCha12), but with the
//! same contract the callers rely on: deterministic per seed, and
//! node-private streams stay independent.

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from an [`RngCore`]'s output.
pub trait Random: Sized {
    /// Draws a uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types uniform ranges can be sampled over.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high > low` guaranteed by the caller.
    fn sample_below<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`; `high >= low` guaranteed by the
    /// caller. Must handle `high == MAX` (the span may not fit the type).
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_below<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high - low) as u128;
                debug_assert!(span > 0);
                // Lemire-style multiply-shift reduction; the modulo bias
                // this leaves is far below anything the simulations can
                // observe.
                low + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                // Widen so `low..=MAX` keeps its full span instead of
                // overflowing.
                let span = (high - low) as u128 + 1;
                low + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges that can be sampled (`start..end`, `start..=end`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_below(self.start, self.end, rng)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256\*\* seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion: decorrelates close seeds and never
            // yields the all-zero xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Sequence sampling helpers.

    use super::{Rng, RngCore};

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection.
    pub trait IndexedRandom {
        /// The element type.
        type Output;
        /// A uniform element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(3u32..=5);
            assert!((3..=5).contains(&y));
        }
        // Full-width spans must not overflow.
        let _ = rng.random_range(0..u64::MAX);
        let _ = rng.random_range(0..=u64::MAX);
        let _ = rng.random_range(u64::MAX - 1..=u64::MAX);
    }

    #[test]
    fn inclusive_range_reaches_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[rng.random_range(0u32..=1) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
        // The top endpoint of a full-width inclusive range is drawable:
        // sample from a 2-value range ending at MAX.
        let mut hit_max = false;
        for _ in 0..200 {
            hit_max |= rng.random_range(u64::MAX - 1..=u64::MAX) == u64::MAX;
        }
        assert!(hit_max);
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5usize..5);
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50-element shuffle left the identity");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
