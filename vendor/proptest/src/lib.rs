//! Offline stand-in for the `proptest` crate.
//!
//! Supports the call-site syntax of the `proptest!` macro with
//! `pattern in strategy` arguments, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, `prop_map`/`prop_flat_map` combinators, range and
//! tuple strategies, `collection::vec`, and `bool::ANY`. Cases are
//! sampled from a generator seeded deterministically per test name.
//! There is **no shrinking**: a failing case reports the panic of the
//! raw sample. Swap in real proptest for minimal counterexamples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases sampled per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; the stand-in trims it to keep the
        // suite fast (tests that care pass `with_cases` explicitly).
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator for a named test.
pub fn test_rng(name: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn sample(&self, rng: &mut StdRng) -> U::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

pub mod bool {
    //! Boolean strategies.

    use super::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// Uniform boolean strategy.
    pub struct Any;

    /// Uniform over `{true, false}`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.random()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// Strategy for vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut proptest_rng = $crate::test_rng(stringify!($name));
            for _ in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)*
                let outcome: ::std::result::Result<(), ()> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                let _ = outcome; // Err is only produced by prop_assume skips
            }
        }
    )*};
}

/// Asserts within a proptest case (no shrinking: panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion within a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec((0u32..7, 0u32..7), 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&(a, b)| a < 7 && b < 7));
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..30).prop_flat_map(|n| (0..n).prop_map(move |i| (n, i)))) {
            let (n, i) = pair;
            prop_assert!(i < n);
        }

        #[test]
        fn bool_any_samples(b in crate::bool::ANY) {
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn bool_any_draws_both_values() {
        let mut rng = crate::test_rng("bool_any");
        let draws: Vec<bool> = (0..64)
            .map(|_| crate::Strategy::sample(&crate::bool::ANY, &mut rng))
            .collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::RngCore;
        let a = crate::test_rng("x").next_u64();
        let b = crate::test_rng("x").next_u64();
        let c = crate::test_rng("y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
