//! Frequency assignment on a radio mesh: a domain scenario for
//! Δ-coloring.
//!
//! Base stations on a toroidal grid interfere with their neighbors and
//! must pick one of a *fixed* set of frequency channels. When the
//! license covers exactly Δ channels (not Δ+1), greedy assignment can
//! dead-end — this is precisely the Δ-coloring problem. This example:
//!
//! 1. builds a torus-shaped mesh (plus random long-range links),
//! 2. assigns channels with the randomized algorithm (Theorem 3),
//! 3. simulates a station going offline and returning with its channel
//!    wiped, repairing it locally with distributed Brooks (Theorem 5).
//!
//! ```text
//! cargo run --example frequency_assignment --release
//! ```

use delta_coloring::brooks::repair_single_uncolored;
use delta_coloring::delta::{delta_color_rand, RandConfig};
use delta_coloring::verify;
use delta_graphs::{generators, NodeId};
use local_model::RoundLedger;

fn main() {
    // 32×32 torus: 4-regular. Stations get exactly 4 channels.
    let g = generators::torus(32, 32);
    let channels = g.max_degree();
    println!("mesh: {g:?}; licensed channels: {channels}");

    let cfg = RandConfig::large_delta(&g, 1);
    let mut ledger = RoundLedger::new();
    let (mut assignment, _) = delta_color_rand(&g, cfg, &mut ledger).expect("assignable");
    verify::check_delta_coloring(&g, &assignment).expect("interference-free");
    println!(
        "assigned all {} stations in {} simulated rounds",
        g.n(),
        ledger.total()
    );

    // Channel histogram.
    let mut hist = vec![0usize; channels];
    for v in g.nodes() {
        hist[assignment.get(v).expect("total").index()] += 1;
    }
    for (c, count) in hist.iter().enumerate() {
        println!("  channel {c}: {count} stations");
    }

    // A station reboots and loses its channel. Its neighbors may block
    // all 4 channels; Theorem 5 repairs it by local recoloring only.
    for &station in &[NodeId(0), NodeId(517), NodeId(1023)] {
        assignment.unset(station);
        let mut repair_ledger = RoundLedger::new();
        let out = repair_single_uncolored(
            &g,
            &mut assignment,
            station,
            channels,
            &mut repair_ledger,
            "repair",
        )
        .expect("repairable");
        verify::check_delta_coloring(&g, &assignment).expect("interference-free after repair");
        println!(
            "station {station} rejoined: repaired within radius {} ({} token moves, dcc={}) in {} rounds",
            out.radius,
            out.moved,
            out.used_dcc,
            repair_ledger.total()
        );
    }
    println!("final assignment remains interference-free and uses only {channels} channels");
}
