//! Distributed Brooks' theorem (Theorem 5) under adversarial pressure.
//!
//! A Δ-coloring with one node wiped cannot always be completed by
//! picking a free color: all Δ colors may appear among the neighbors.
//! Theorem 5 says a repair never needs to touch anything outside the
//! `2·log_{Δ-1} n` neighborhood. This example hammers the repair
//! procedure on a random cubic graph and reports the observed recoloring
//! radii against the theorem's bound.
//!
//! ```text
//! cargo run --example brooks_repair --release
//! ```

use delta_coloring::brooks::{brooks_color, repair_single_uncolored, theorem5_radius};
use delta_coloring::verify;
use delta_graphs::{generators, NodeId};
use local_model::RoundLedger;

fn main() {
    for &n in &[1 << 10, 1 << 12, 1 << 14] {
        let delta = 3;
        let g = generators::random_regular(n, delta, 99);
        let base = brooks_color(&g, delta).expect("Brooks coloring");
        let bound = theorem5_radius(n, delta);

        let mut max_radius = 0usize;
        let mut total_moves = 0usize;
        let mut dcc_repairs = 0usize;
        let trials = 50;
        for i in 0..trials {
            // Deterministic pseudo-random victim.
            let v = NodeId(((i as u64 * 2_654_435_761) % n as u64) as u32);
            let mut coloring = base.clone();
            coloring.unset(v);
            let mut ledger = RoundLedger::new();
            let out = repair_single_uncolored(&g, &mut coloring, v, delta, &mut ledger, "repair")
                .expect("repairable");
            verify::check_delta_coloring(&g, &coloring).expect("valid after repair");
            max_radius = max_radius.max(out.radius);
            total_moves += out.moved;
            dcc_repairs += out.used_dcc as usize;
        }
        println!(
            "n={n:>6}: {trials} repairs, max radius {max_radius} (Thm 5 bound {bound}), \
             {total_moves} token moves total, {dcc_repairs} DCC recolorings"
        );
        assert!(max_radius <= bound, "Theorem 5 violated!");
    }
    println!("all repairs stayed within the Theorem 5 radius");
}
