//! Explore the structural engine of the paper: graphs without small
//! degree-choosable components *must expand* (Lemmas 12, 13, 15).
//!
//! This example measures BFS level sizes around nodes whose
//! neighborhoods are DCC-free, before and after the marking process,
//! and checks them against the paper's lower bounds. It also
//! demonstrates Lemma 13 (neighborhoods decompose into cliques).
//!
//! ```text
//! cargo run --example expansion_explorer --release
//! ```

use delta_coloring::gallai;
use delta_coloring::marking::{marking_process, MarkingParams};
use delta_coloring::palette::PartialColoring;
use delta_graphs::{generators, props, NodeId};
use local_model::RoundLedger;

fn main() {
    let n = 1 << 14;
    let delta = 4;
    let g = generators::random_regular(n, delta, 7);
    println!("graph: {g:?}");

    // Lemma 13: no radius-1 DCC around v => G[N(v)] is a clique union.
    let v0 = NodeId(0);
    if gallai::find_dcc_for_node(&g, v0, 1, 2, usize::MAX).is_none() {
        let (nbhd, _) = g.induced(g.neighbors(v0));
        println!(
            "Lemma 13 at node 0: neighborhood has {} edges; clique-union property: {}",
            nbhd.m(),
            gallai::neighborhoods_are_clique_unions(&g)
        );
    }

    // Lemma 15: |B_r(v)| >= (Δ-1)^(r/2) for DCC-free, Δ-regular balls.
    println!("\nLemma 15 (no marking): level sizes around DCC-free nodes");
    for r in [2usize, 4, 6] {
        let bound = ((delta - 1) as f64).powf(r as f64 / 2.0).ceil() as usize;
        let mut min_level = usize::MAX;
        let mut count = 0;
        for i in 0..400u64 {
            let v = NodeId(((i * 2_654_435_761) % n as u64) as u32);
            if !gallai::ball_is_dcc_free(&delta_graphs::bfs::ball(&g, v, r)) {
                continue;
            }
            count += 1;
            let levels = props::level_sizes(&g, v);
            min_level = min_level.min(levels.get(r).copied().unwrap_or(0));
        }
        println!("  r={r}: {count} qualifying nodes, min |B_r| = {min_level}, bound {bound}");
        assert!(count == 0 || min_level >= bound, "Lemma 15 violated");
    }

    // Lemma 12: after the marking process (b=6), expansion persists at
    // rate (Δ-2)^(r/2) in the unmarked graph.
    println!("\nLemma 12 (after marking, b=6): level sizes in H");
    let mut coloring = PartialColoring::new(g.n());
    let mut ledger = RoundLedger::new();
    let outcome = marking_process(
        &g,
        MarkingParams { p: 0.002, b: 6 },
        3,
        &mut coloring,
        &mut ledger,
        "mark",
    );
    let keep: Vec<NodeId> = g.nodes().filter(|v| !outcome.marked[v.index()]).collect();
    let (h, _) = g.induced(&keep);
    println!(
        "  {} T-nodes, {} marked nodes removed; H has {} nodes",
        outcome.t_nodes.len(),
        outcome.marked.iter().filter(|&&m| m).count(),
        h.n()
    );
    for r in [2usize, 4, 6] {
        let bound = ((delta - 2) as f64).powf(r as f64 / 2.0).ceil() as usize;
        let mut min_level = usize::MAX;
        let mut count = 0;
        for i in 0..400u64 {
            let v = NodeId(((i * 2_654_435_761) % h.n() as u64) as u32);
            // Lemma 12 preconditions: no DCC within r, degrees in
            // [Δ-1, Δ] throughout the ball.
            let ball = delta_graphs::bfs::ball(&h, v, r);
            if !gallai::ball_is_dcc_free(&ball)
                || ball.globals.iter().any(|&u| h.degree(u) + 1 < delta)
            {
                continue;
            }
            count += 1;
            let levels = props::level_sizes(&h, v);
            min_level = min_level.min(levels.get(r).copied().unwrap_or(0));
        }
        println!("  r={r}: {count} qualifying nodes, min |B_r| = {min_level}, bound {bound}");
        assert!(count == 0 || min_level >= bound, "Lemma 12 violated");
    }
    println!("\nexpansion bounds hold: DCC-free regions cannot hide from the shattering process");
}
