//! Register allocation as Δ-coloring: a second domain scenario.
//!
//! A compiler models "which values are live at the same time" as an
//! *interference graph*; assigning machine registers is coloring it.
//! When the target has exactly Δ registers (the maximum number of
//! simultaneous interferences), greedy allocation can paint itself into
//! a corner — Brooks' theorem says a Δ-register assignment still exists
//! unless some value interferes with everything (a clique).
//!
//! This example synthesizes interference graphs from random "program
//! traces" (interval-overlap graphs with bounded live-range width plus
//! cross-block conflicts), allocates registers with the automatic
//! strategy, and reports spills avoided relative to greedy `Δ+1`
//! allocation.
//!
//! ```text
//! cargo run --example register_allocation --release
//! ```

use delta_coloring::delta::{delta_color, Strategy};
use delta_coloring::verify;
use delta_graphs::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesizes an interference graph: `n` values with random live
/// intervals over a timeline, at most `width` alive at once, plus a few
/// random cross-block interference edges to break interval structure.
fn interference_graph(n: usize, width: usize, extra: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    // Live intervals via a running multiset: at each step a value is
    // born; it dies after a random number of steps, never exceeding the
    // width bound.
    let mut starts = vec![0usize; n];
    let mut ends = vec![0usize; n];
    let mut alive: Vec<usize> = Vec::new();
    for (v, _) in starts.clone().iter().enumerate() {
        // Kill until below width.
        while alive.len() >= width {
            let k = rng.random_range(0..alive.len());
            let dead = alive.swap_remove(k);
            ends[dead] = v;
        }
        starts[v] = v;
        alive.push(v);
    }
    for &v in &alive {
        ends[v] = n;
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if starts[v] < ends[u] && starts[u] < ends[v] {
                b.add_edge(u as u32, v as u32);
            }
        }
    }
    // Cross-block conflicts.
    let mut added = 0;
    while added < extra {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            b.add_edge(u, v);
            added += 1;
        }
    }
    b.build()
}

fn main() {
    for seed in 0..3u64 {
        let g = interference_graph(400, 5, 60, seed);
        let registers = g.max_degree();
        if verify::assert_nice(&g).is_err() {
            println!("trace {seed}: degenerate interference graph, skipping");
            continue;
        }
        let mut ledger = local_model::RoundLedger::new();
        match delta_color(&g, Strategy::Auto, seed, &mut ledger) {
            Ok(assignment) => {
                verify::check_delta_coloring(&g, &assignment).expect("valid allocation");
                let used = verify::colors_used(&assignment);
                println!(
                    "trace {seed}: {} values, {} interferences, max pressure {registers} \
                     -> allocated with {used} registers ({} simulated rounds)",
                    g.n(),
                    g.m(),
                    ledger.total()
                );
                println!(
                    "  greedy would have needed up to {} registers; Δ-coloring saves the spill",
                    registers + 1
                );
            }
            Err(e) => println!("trace {seed}: allocation failed: {e}"),
        }
    }
}
