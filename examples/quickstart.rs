//! Quickstart: Δ-color a graph with every algorithm in the crate and
//! compare simulated LOCAL round counts.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use delta_coloring::baseline;
use delta_coloring::delta::{delta_color_det, delta_color_rand, DetConfig, RandConfig};
use delta_coloring::verify;
use delta_graphs::generators;
use local_model::RoundLedger;

fn main() {
    // A random 4-regular graph on 2048 nodes: by Brooks' theorem it is
    // 4-colorable, and the paper's algorithms find such a coloring in
    // few LOCAL rounds.
    let n = 2048;
    let g = generators::random_regular(n, 4, 42);
    println!("graph: {g:?}");
    verify::assert_nice(&g).expect("the paper's algorithms need a nice graph");

    // Randomized algorithm (Theorem 3).
    let mut ledger = RoundLedger::new();
    let cfg = RandConfig::large_delta(&g, 7);
    let (coloring, stats) = delta_color_rand(&g, cfg, &mut ledger).expect("colorable");
    verify::check_delta_coloring(&g, &coloring).expect("verified Δ-coloring");
    println!(
        "\n[randomized, Thm 3] valid 4-coloring in {} rounds",
        ledger.total()
    );
    println!(
        "  attempts={} |B-removed|={} |H|={} T-nodes={} happy={:.2}",
        stats.attempts, stats.b_removed, stats.h_size, stats.t_nodes, stats.happy_fraction
    );
    println!("  per-phase rounds:");
    for (phase, rounds) in ledger.by_phase() {
        println!("    {phase:<24} {rounds}");
    }

    // Deterministic algorithm (Theorem 4).
    let mut ledger = RoundLedger::new();
    let (coloring, det_stats) =
        delta_color_det(&g, DetConfig::default(), &mut ledger).expect("colorable");
    verify::check_delta_coloring(&g, &coloring).expect("verified Δ-coloring");
    println!(
        "\n[deterministic, Thm 4] valid 4-coloring in {} rounds",
        ledger.total()
    );
    println!(
        "  ruling-set separation R={} base size={} layers={}",
        det_stats.separation, det_stats.base_size, det_stats.layers
    );

    // Panconesi–Srinivasan-style baseline.
    let mut ledger = RoundLedger::new();
    let (coloring, ps) = baseline::ps_style_delta(&g, 3, &mut ledger).expect("colorable");
    verify::check_delta_coloring(&g, &coloring).expect("verified Δ-coloring");
    println!(
        "\n[PS-style baseline] valid 4-coloring in {} rounds",
        ledger.total()
    );
    println!(
        "  extra class={} repair batches={} max repair radius={}",
        ps.extra_class_size, ps.batches, ps.max_repair_radius
    );

    // The "easy" (Δ+1)-coloring, for contrast.
    let mut ledger = RoundLedger::new();
    let coloring = baseline::randomized_delta_plus_one(&g, 5, &mut ledger).expect("colorable");
    delta_coloring::palette::check_k_coloring(&g, &coloring, 5).expect("verified (Δ+1)-coloring");
    println!(
        "\n[(Δ+1) baseline] valid 5-coloring in {} rounds",
        ledger.total()
    );
    println!("\nNote the asymmetry the paper is about: one extra color makes the problem trivial.");
}
