//! Integration tests for the adoption surface: file formats round-trip
//! through the coloring pipeline, and the one-call API behaves.

use delta_coloring::delta::{delta_color, Strategy};
use delta_coloring::verify::{check_delta_coloring, colors_used};
use delta_graphs::{generators, io};
use local_model::RoundLedger;

#[test]
fn dimacs_round_trip_through_coloring() {
    let g = generators::random_regular(300, 4, 21);
    let text = io::to_dimacs(&g);
    let h = io::parse_dimacs(&text).expect("round trip");
    assert_eq!(g, h);
    let mut ledger = RoundLedger::new();
    let c = delta_color(&h, Strategy::Auto, 1, &mut ledger).expect("colorable");
    check_delta_coloring(&h, &c).unwrap();
    assert!(colors_used(&c) <= 4);
}

#[test]
fn edge_list_round_trip_through_coloring() {
    let g = generators::torus(9, 9);
    let text = io::to_edge_list(&g);
    let h = io::parse_edge_list(&text).expect("round trip");
    assert_eq!(g, h);
    let mut ledger = RoundLedger::new();
    let c = delta_color(&h, Strategy::Deterministic, 0, &mut ledger).expect("colorable");
    check_delta_coloring(&h, &c).unwrap();
}

#[test]
fn dot_output_reflects_coloring() {
    let g = generators::petersen_like();
    let mut ledger = RoundLedger::new();
    let c = delta_color(&g, Strategy::Auto, 2, &mut ledger).expect("colorable");
    let colors: Vec<u32> = g.nodes().map(|v| c.get(v).unwrap().0).collect();
    let dot = io::to_dot(&g, Some(&colors));
    assert_eq!(dot.matches("fillcolor").count(), g.n());
    assert_eq!(dot.matches(" -- ").count(), g.m());
}

#[test]
fn strategies_disagree_on_rounds_but_agree_on_validity() {
    // n = 1024: large enough that the asymptotic separation (randomized
    // ~(log log n)^2 vs the baselines' polylog growth) dominates the
    // per-seed noise of the stochastic phases.
    let g = generators::random_regular(1024, 4, 33);
    let mut results = Vec::new();
    for &s in &[
        Strategy::RandomizedLarge,
        Strategy::Deterministic,
        Strategy::PsBaseline,
    ] {
        let mut ledger = RoundLedger::new();
        let c = delta_color(&g, s, 5, &mut ledger).unwrap();
        check_delta_coloring(&g, &c).unwrap();
        results.push((s, ledger.total()));
    }
    // The randomized algorithm must be the cheapest of the three on the
    // hard regime (the paper's headline).
    let rand_rounds = results[0].1;
    assert!(
        results[1..].iter().all(|&(_, r)| rand_rounds < r),
        "randomized not fastest: {results:?}"
    );
}

#[test]
fn pg2_incidence_graph_is_colorable_and_high_girth() {
    // Deterministic girth-6 family: a clean instance where no radius-2
    // DCCs exist anywhere, exercising the shattering path end to end.
    let g = generators::projective_plane_incidence(7);
    assert_eq!(delta_graphs::props::girth(&g), Some(6));
    let mut ledger = RoundLedger::new();
    let c = delta_color(&g, Strategy::Auto, 9, &mut ledger).expect("colorable");
    check_delta_coloring(&g, &c).unwrap();
    // Bipartite: chromatic number 2, but Δ-coloring only promises Δ.
    assert!(colors_used(&c) <= g.max_degree());
}

#[test]
fn geometric_interference_graphs_color_when_nice() {
    for seed in 0..4u64 {
        let g = generators::random_geometric(300, 0.08, seed);
        if delta_coloring::verify::assert_nice(&g).is_err() {
            continue;
        }
        let mut ledger = RoundLedger::new();
        let c = delta_color(&g, Strategy::Auto, seed, &mut ledger).expect("colorable");
        check_delta_coloring(&g, &c).unwrap();
    }
}
