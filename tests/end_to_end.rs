//! End-to-end integration tests: every Δ-coloring algorithm against
//! every generator family, with full verification.

use delta_coloring::baseline;
use delta_coloring::delta::{delta_color_det, delta_color_rand, DetConfig, RandConfig};
use delta_coloring::list_coloring::ListColorMethod;
use delta_coloring::verify::{assert_nice, check_delta_coloring};
use delta_graphs::{generators, Graph};
use local_model::RoundLedger;

fn nice_families() -> Vec<(String, Graph)> {
    let mut out: Vec<(String, Graph)> = vec![
        (
            "random-regular-3".into(),
            generators::random_regular(400, 3, 1),
        ),
        (
            "random-regular-4".into(),
            generators::random_regular(400, 4, 2),
        ),
        (
            "random-regular-6".into(),
            generators::random_regular(300, 6, 3),
        ),
        ("torus".into(), generators::torus(14, 15)),
        ("hypercube-6".into(), generators::hypercube(6)),
        ("petersen".into(), generators::petersen_like()),
        ("star".into(), generators::star(7)),
        (
            "complete-bipartite".into(),
            generators::complete_bipartite(4, 7),
        ),
        ("circulant".into(), generators::circulant(100, 4)),
    ];
    for seed in 0..3u64 {
        let g = generators::tree_with_chords(300, 40, seed);
        if assert_nice(&g).is_ok() {
            out.push((format!("tree+chords-{seed}"), g));
        }
        let p = generators::perturbed_regular(300, 4, 0.05, seed);
        if assert_nice(&p).is_ok() {
            out.push((format!("perturbed-{seed}"), p));
        }
        let t = generators::random_tree(200, seed);
        if assert_nice(&t).is_ok() {
            out.push((format!("tree-{seed}"), t));
        }
    }
    out
}

#[test]
fn randomized_algorithm_on_all_families() {
    for (name, g) in nice_families() {
        assert_nice(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        let cfg = RandConfig::large_delta(&g, 11);
        let mut ledger = RoundLedger::new();
        let (c, _) =
            delta_color_rand(&g, cfg, &mut ledger).unwrap_or_else(|e| panic!("{name}: {e}"));
        check_delta_coloring(&g, &c).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(ledger.total() > 0, "{name}: zero rounds charged");
    }
}

#[test]
fn small_delta_variant_on_cubic_families() {
    for seed in 0..2u64 {
        let g = generators::random_regular(500, 3, 77 + seed);
        let cfg = RandConfig::small_delta(&g, seed);
        let mut ledger = RoundLedger::new();
        let (c, _) = delta_color_rand(&g, cfg, &mut ledger).unwrap();
        check_delta_coloring(&g, &c).unwrap();
    }
}

#[test]
fn deterministic_algorithm_on_all_families() {
    for (name, g) in nice_families() {
        let mut ledger = RoundLedger::new();
        let (c, stats) = delta_color_det(&g, DetConfig::default(), &mut ledger)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        check_delta_coloring(&g, &c).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(stats.base_size >= 1, "{name}");
    }
}

#[test]
fn deterministic_algorithm_with_randomized_layers() {
    let g = generators::random_regular(300, 4, 5);
    let cfg = DetConfig {
        method: ListColorMethod::Randomized,
        seed: 3,
    };
    let mut ledger = RoundLedger::new();
    let (c, _) = delta_color_det(&g, cfg, &mut ledger).unwrap();
    check_delta_coloring(&g, &c).unwrap();
}

#[test]
fn ps_baseline_on_all_families() {
    for (name, g) in nice_families() {
        let mut ledger = RoundLedger::new();
        let (c, _) =
            baseline::ps_style_delta(&g, 7, &mut ledger).unwrap_or_else(|e| panic!("{name}: {e}"));
        check_delta_coloring(&g, &c).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn all_algorithms_reject_brooks_exceptions() {
    let clique = generators::complete(5);
    let odd_cycle = generators::cycle(9);
    let path = generators::path(12);
    for g in [&clique, &odd_cycle, &path] {
        let cfg = RandConfig::large_delta(g, 0);
        assert!(delta_color_rand(g, cfg, &mut RoundLedger::new()).is_err());
        assert!(delta_color_det(g, DetConfig::default(), &mut RoundLedger::new()).is_err());
    }
}

#[test]
fn rand_beats_ps_baseline_on_regular_graphs() {
    // The paper's headline: the new algorithms are (much) faster than
    // the Panconesi–Srinivasan-style baseline. Verify the round counts
    // reflect that on a mid-size instance.
    let g = generators::random_regular(2000, 4, 9);
    let cfg = RandConfig::large_delta(&g, 1);
    let mut rand_ledger = RoundLedger::new();
    let (c1, _) = delta_color_rand(&g, cfg, &mut rand_ledger).unwrap();
    check_delta_coloring(&g, &c1).unwrap();
    let mut ps_ledger = RoundLedger::new();
    let (c2, _) = baseline::ps_style_delta(&g, 1, &mut ps_ledger).unwrap();
    check_delta_coloring(&g, &c2).unwrap();
    assert!(
        rand_ledger.total() < ps_ledger.total(),
        "rand {} >= ps {}",
        rand_ledger.total(),
        ps_ledger.total()
    );
}

#[test]
fn round_ledgers_have_named_phases() {
    let g = generators::random_regular(400, 4, 21);
    let cfg = RandConfig::large_delta(&g, 2);
    let mut ledger = RoundLedger::new();
    delta_color_rand(&g, cfg, &mut ledger).unwrap();
    let phases = ledger.by_phase();
    assert!(!phases.is_empty());
    assert!(phases.iter().any(|(p, _)| p.starts_with("phase1")));
    let sum: u64 = phases.iter().map(|&(_, r)| r).sum();
    assert_eq!(sum, ledger.total());
}

#[test]
fn disconnected_graphs_are_rejected_cleanly() {
    let g = generators::random_regular(100, 3, 1)
        .disjoint_union(&generators::random_regular(100, 3, 2));
    let cfg = RandConfig::large_delta(&g, 0);
    assert!(delta_color_rand(&g, cfg, &mut RoundLedger::new()).is_err());
}
