//! Determinism regression: for a fixed seed, the parallel engine
//! schedule must produce output bit-identical to the sequential
//! schedule — on raw engine programs and through the full coloring
//! algorithms — on cycles, random regular graphs, and Gallai trees.
//!
//! The engine guarantees this by keeping delivery synchronous and
//! randomness node-private; these tests are the tripwire for any future
//! change that breaks the schedule-independence.

use delta_coloring::delta::{delta_color_rand, RandConfig};
use delta_coloring::list_coloring::list_color_randomized;
use delta_coloring::marking::{marking_process, MarkingParams};
use delta_coloring::mis::luby_mis;
use delta_coloring::palette::{Lists, PartialColoring};
use delta_graphs::{generators, Graph};
use local_model::{force_exec_mode, Engine, ExecMode, Outbox, RoundLedger};

/// Runs `f` once under each forced schedule and returns both results.
/// The [`force_exec_mode`] guard holds a process-wide lock, so these
/// tests serialize against each other (and anyone else forcing a mode)
/// automatically — no external mutex needed.
fn under_both_modes<T>(f: impl Fn() -> T) -> (T, T) {
    let seq = {
        let _mode = force_exec_mode(ExecMode::Sequential);
        f()
    };
    let par = {
        let _mode = force_exec_mode(ExecMode::Parallel);
        f()
    };
    (seq, par)
}

/// The schedule-independent fingerprint of a ledger: rounds plus the
/// full bandwidth section (bits, heaviest edge, violations) — all of
/// which must be bit-identical across execution modes.
fn ledger_fingerprint(ledger: &RoundLedger) -> (u64, u64, u64, u64) {
    (
        ledger.total(),
        ledger.bits_sent(),
        ledger.max_edge_bits(),
        ledger.congest_violations(),
    )
}

fn families(seed: u64) -> Vec<(String, Graph)> {
    vec![
        ("cycle".into(), generators::cycle(257)),
        (
            "random-regular".into(),
            generators::random_regular(600, 4, seed),
        ),
        (
            "gallai-tree".into(),
            generators::random_gallai_tree(60, 5, seed),
        ),
    ]
}

#[test]
fn raw_engine_program_is_schedule_independent() {
    for (name, g) in families(1) {
        let (seq, par) = under_both_modes(|| {
            let mut ledger = RoundLedger::new();
            let mut engine = Engine::new(&g, 7, |v| v.0 as u64);
            for _ in 0..6 {
                engine.step(
                    &mut ledger,
                    "mix",
                    |ctx, s, out: &mut Outbox<u64>| {
                        *s = s.wrapping_add(ctx.random_below(1 << 24));
                        out.broadcast(*s);
                    },
                    |ctx, s, inbox| {
                        for &(w, m) in inbox {
                            *s ^= m.rotate_left(w.0 % 63);
                        }
                        *s ^= ctx.random_below(1 << 16);
                    },
                );
            }
            (engine.into_states(), ledger_fingerprint(&ledger))
        });
        assert_eq!(seq, par, "{name}: engine schedules diverged");
    }
}

#[test]
fn luby_mis_is_schedule_independent() {
    for seed in [3u64, 11] {
        for (name, g) in families(seed) {
            let (seq, par) = under_both_modes(|| {
                let mut ledger = RoundLedger::new();
                let mis = luby_mis(&g, seed, &mut ledger, "mis");
                (mis, ledger_fingerprint(&ledger))
            });
            assert_eq!(seq, par, "{name}/seed {seed}: MIS diverged");
        }
    }
}

#[test]
fn list_coloring_is_schedule_independent() {
    for (name, g) in families(5) {
        let lists = Lists::new(
            g.nodes()
                .map(|v| delta_coloring::palette::palette(g.degree(v) + 1))
                .collect(),
        );
        let (seq, par) = under_both_modes(|| {
            let mut ledger = RoundLedger::new();
            let c = list_color_randomized(
                &g,
                &lists,
                PartialColoring::new(g.n()),
                9,
                &mut ledger,
                "lc",
            )
            .expect("deg+1 instances are solvable");
            (c, ledger_fingerprint(&ledger))
        });
        assert_eq!(seq.1, par.1, "{name}: round counts diverged");
        assert!(seq.0 == par.0, "{name}: colorings diverged");
    }
}

#[test]
fn ruling_sets_are_schedule_independent_and_measured() {
    // The bit-halving ruling sets now execute through the engine (one
    // reach flood per bit level): their transcripts — the set, the
    // rounds, and every bandwidth counter — must be bit-identical
    // across schedules, and the floods must show up as measured bits.
    for (name, g) in families(7) {
        for alpha in [2usize, 4] {
            let (seq, par) = under_both_modes(|| {
                let mut ledger = RoundLedger::new();
                let set = delta_coloring::ruling::ruling_set_deterministic_alpha(
                    &g,
                    alpha,
                    &mut ledger,
                    "rs",
                );
                (set, ledger_fingerprint(&ledger))
            });
            assert_eq!(seq, par, "{name}/alpha {alpha}: ruling sets diverged");
            assert!(seq.1 .1 > 0, "{name}/alpha {alpha}: no bits measured");
        }
    }
}

#[test]
fn overlay_ruling_sets_are_schedule_independent_and_measured() {
    // The randomized (Luby) ruling sets now execute on the G^{α-1}
    // overlay — α-1 relay rounds of the host graph per virtual round.
    // Their transcripts (set, rounds, every bandwidth counter) must be
    // bit-identical across schedules, with nonzero measured relay bits.
    for (name, g) in families(9) {
        for alpha in [3usize, 4] {
            let (seq, par) = under_both_modes(|| {
                let mut ledger = RoundLedger::new();
                let set =
                    delta_coloring::ruling::ruling_set_randomized(&g, alpha, 5, &mut ledger, "rs");
                (set, ledger_fingerprint(&ledger))
            });
            assert_eq!(seq, par, "{name}/alpha {alpha}: overlay ruling diverged");
            assert!(seq.1 .1 > 0, "{name}/alpha {alpha}: relays not measured");
        }
    }
}

#[test]
fn overlay_marking_within_is_schedule_independent() {
    // The remainder-graph marking now runs through the InducedOverlay:
    // non-members silent, every round a measured host round. Transcript
    // must be schedule-independent and equal to the materialized
    // subgraph execution.
    let g = generators::random_regular(600, 4, 3);
    let mask: Vec<bool> = g.nodes().map(|v| v.0 % 5 != 0).collect();
    let member_count = mask.iter().filter(|&&m| m).count();
    let (seq, par) = under_both_modes(|| {
        let mut coloring = PartialColoring::new(member_count);
        let mut ledger = RoundLedger::new();
        let out = delta_coloring::marking::marking_process_within(
            &g,
            &mask,
            MarkingParams { p: 0.02, b: 6 },
            13,
            &mut coloring,
            &mut ledger,
            "mark",
        );
        (out.t_nodes, out.marked, ledger_fingerprint(&ledger))
    });
    assert_eq!(seq, par, "overlay marking diverged");
    assert!(seq.2 .1 > 0, "overlay marking bits must be measured");
    // Materialized-subgraph execution places the same marks (the
    // overlay id space is exactly the induced compaction).
    let members: Vec<delta_graphs::NodeId> = g.nodes().filter(|v| mask[v.index()]).collect();
    let (sub, _map) = g.induced(&members);
    let mat = {
        let mut coloring = PartialColoring::new(sub.n());
        let mut ledger = RoundLedger::new();
        marking_process(
            &sub,
            MarkingParams { p: 0.02, b: 6 },
            13,
            &mut coloring,
            &mut ledger,
            "mark",
        )
    };
    assert_eq!(seq.0, mat.t_nodes, "T-nodes diverged from materialized run");
    assert_eq!(seq.1, mat.marked, "marks diverged from materialized run");
}

#[test]
fn dcc_detection_is_schedule_independent_and_measured() {
    // Collective DCC detection (the ball-collection subsystem) must be
    // transcript-identical across schedules, with measured relay bits.
    let g = generators::torus(8, 8);
    let (seq, par) = under_both_modes(|| {
        let mut ledger = RoundLedger::new();
        let dccs = delta_coloring::gallai::find_dccs_all(&g, 2, 4, 64, &mut ledger, "dcc");
        let found: Vec<Option<Vec<delta_graphs::NodeId>>> =
            dccs.into_iter().map(|f| f.map(|f| f.nodes)).collect();
        (found, ledger_fingerprint(&ledger))
    });
    assert_eq!(seq, par, "DCC detection diverged");
    assert!(seq.1 .1 > 0, "certificate floods must be measured");
}

#[test]
fn marking_is_schedule_independent() {
    let g = generators::random_regular(800, 4, 2);
    let (seq, par) = under_both_modes(|| {
        let mut coloring = PartialColoring::new(g.n());
        let mut ledger = RoundLedger::new();
        let out = marking_process(
            &g,
            MarkingParams { p: 0.02, b: 6 },
            13,
            &mut coloring,
            &mut ledger,
            "mark",
        );
        (out.t_nodes, out.marked, ledger_fingerprint(&ledger))
    });
    assert_eq!(seq, par, "marking diverged");
    assert!(
        seq.2 .1 > 0,
        "the marking flood executes on the engine: bits must be measured"
    );
}

#[test]
fn full_randomized_delta_coloring_is_schedule_independent() {
    let g = generators::random_regular(500, 4, 21);
    let (seq, par) = under_both_modes(|| {
        let cfg = RandConfig::large_delta(&g, 4);
        let mut ledger = RoundLedger::new();
        let (c, stats) = delta_color_rand(&g, cfg, &mut ledger).expect("colorable");
        (c, stats.attempts, ledger_fingerprint(&ledger))
    });
    assert_eq!(seq.1, par.1, "attempt counts diverged");
    assert_eq!(seq.2, par.2, "round counts diverged");
    assert!(seq.0 == par.0, "colorings diverged");
}
