//! Property-based tests (proptest) for the structural invariants the
//! paper's algorithms rely on.

use delta_coloring::brooks::{brooks_color, repair_single_uncolored};
use delta_coloring::gallai;
use delta_coloring::linial::{linial_color_bound, linial_coloring};
use delta_coloring::list_coloring::{self, ListColorMethod};
use delta_coloring::marking::{check_marking, marking_process, MarkingParams};
use delta_coloring::mis::{is_mis, luby_mis};
use delta_coloring::palette::{check_list_coloring, Color, Lists, PartialColoring};
use delta_coloring::ruling::{is_ruling_set, ruling_set_deterministic, ruling_set_randomized};
use delta_coloring::verify::{assert_nice, check_delta_coloring};
use delta_graphs::components::{blocks, is_biconnected};
use delta_graphs::{bfs, generators, props, Graph, NodeId};
use local_model::RoundLedger;
use proptest::prelude::*;

/// Strategy: a random simple graph from an edge list over `n` nodes,
/// with roughly `density·n` sampled edge slots.
fn arb_graph_dense(max_n: usize, density: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..(density * n)).prop_map(
            move |pairs| {
                let edges: Vec<(u32, u32)> = pairs.into_iter().filter(|&(a, b)| a != b).collect();
                Graph::from_edges(n, &edges).expect("valid")
            },
        )
    })
}

/// Strategy: a random simple graph from an edge list over `n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    arb_graph_dense(max_n, 3)
}

/// Strategy: a connected random graph (take the largest component).
fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    arb_graph(max_n).prop_map(|g| {
        let comps = delta_graphs::components::component_node_sets(&g);
        let biggest = comps.into_iter().max_by_key(Vec::len).expect("non-empty");
        g.induced(&biggest).0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linial_is_proper_and_bounded(g in arb_graph(60)) {
        let mut ledger = RoundLedger::new();
        let colors = linial_coloring(&g, &mut ledger, "linial");
        prop_assert!(delta_coloring::reduce::is_proper(&g, &colors));
        let bound = linial_color_bound(g.max_degree()).max(g.n());
        prop_assert!(colors.iter().all(|&c| (c as usize) < bound));
    }

    #[test]
    fn luby_mis_is_mis(g in arb_graph(60), seed in 0u64..100) {
        let mut ledger = RoundLedger::new();
        let m = luby_mis(&g, seed, &mut ledger, "mis");
        prop_assert!(is_mis(&g, &m));
    }

    #[test]
    fn deterministic_ruling_set_is_ruling(g in arb_connected_graph(60)) {
        let mut ledger = RoundLedger::new();
        let set = ruling_set_deterministic(&g, &mut ledger, "rs");
        let beta = 2 * ((g.n().max(2)).ilog2() as usize + 1);
        prop_assert!(is_ruling_set(&g, &set, 2, beta));
    }

    #[test]
    fn randomized_ruling_set_is_ruling(
        g in arb_connected_graph(50),
        alpha in 2usize..4,
        seed in 0u64..50,
    ) {
        let mut ledger = RoundLedger::new();
        let set = ruling_set_randomized(&g, alpha, seed, &mut ledger, "rs");
        prop_assert!(is_ruling_set(&g, &set, alpha, alpha - 1));
    }

    #[test]
    fn list_coloring_solves_deg_plus_one(
        g in arb_graph(50),
        seed in 0u64..50,
        extra in 0usize..3,
        randomized in proptest::bool::ANY,
    ) {
        let lists = Lists::new(
            g.nodes()
                .map(|v| delta_coloring::palette::palette(g.degree(v) + 1 + extra))
                .collect(),
        );
        let method = if randomized {
            ListColorMethod::Randomized
        } else {
            ListColorMethod::Deterministic
        };
        let mut ledger = RoundLedger::new();
        let c = list_coloring::list_color(
            &g, &lists, PartialColoring::new(g.n()), method, seed, &mut ledger, "lc",
        ).expect("deg+1 instances are always solvable");
        prop_assert!(check_list_coloring(&g, &c, &lists).is_ok());
    }

    #[test]
    fn blocks_are_biconnected_and_cover_edges(g in arb_graph(40)) {
        let b = blocks(&g);
        // Every block of size >= 3 induces a biconnected subgraph.
        for blk in &b.blocks {
            if blk.len() >= 3 {
                let (sub, _) = g.induced(blk);
                prop_assert!(is_biconnected(&sub), "block {blk:?} not biconnected");
            }
        }
        // Every edge lies in exactly one block.
        let mut edge_count = 0usize;
        for blk in &b.blocks {
            let (sub, _) = g.induced(blk);
            edge_count += sub.m();
        }
        prop_assert_eq!(edge_count, g.m());
    }

    #[test]
    fn gallai_characterization_forward(
        g in arb_graph_dense(20, 6).prop_map(|g| {
            let comps = delta_graphs::components::component_node_sets(&g);
            let biggest = comps.into_iter().max_by_key(Vec::len).expect("non-empty");
            g.induced(&biggest).0
        }),
        seed in 0u64..20,
    ) {
        // Theorem 8 (one direction): a connected graph that is NOT a
        // Gallai tree is degree-choosable, so ANY tight list assignment
        // is solvable. Random tight lists must therefore never fail.
        prop_assume!(g.n() >= 4 && !props::is_gallai_forest(&g));
        let mut rng_state = seed.wrapping_mul(2).wrapping_add(1);
        let lists = Lists::new(
            g.nodes()
                .map(|v| {
                    // Deterministic pseudo-random tight lists: deg(v)
                    // DISTINCT colors from a universe of deg(v) + 3.
                    let universe = g.degree(v) as u64 + 3;
                    let mut pool: Vec<u32> = (0..universe as u32).collect();
                    // Fisher-Yates with an LCG.
                    for i in (1..pool.len()).rev() {
                        rng_state = rng_state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let j = ((rng_state >> 33) % (i as u64 + 1)) as usize;
                        pool.swap(i, j);
                    }
                    pool.truncate(g.degree(v));
                    pool.into_iter().map(Color).collect()
                })
                .collect(),
        );
        prop_assert!(lists.satisfies_deg(&g));
        let solved = gallai::solve_degree_list(&g, &lists, &PartialColoring::new(g.n()));
        prop_assert!(solved.is_ok(), "degree-choosable graph rejected a tight assignment");
    }

    #[test]
    fn gallai_blocks_reject_tight_identical_lists(
        blocks_n in 1usize..6,
        max_clique in 2usize..5,
        seed in 0u64..50,
    ) {
        // Gallai trees made of clique/odd-cycle blocks: the whole graph
        // gets the canonical *identical* tight lists only per block in
        // general, but single-block Gallai trees (cliques, odd cycles)
        // must reject them (Theorem 8, other direction, block case).
        let g = generators::random_gallai_tree(1, max_clique, seed);
        let _ = blocks_n;
        prop_assume!(g.n() >= 3);
        if props::is_clique(&g) || props::is_odd_cycle(&g) {
            let lists = gallai::tight_identical_lists(&g);
            prop_assert!(
                gallai::solve_degree_list(&g, &lists, &PartialColoring::new(g.n())).is_err()
            );
        }
    }


    #[test]
    fn gallai_trees_reject_canonical_lists(
        num_blocks in 1usize..10,
        max_clique in 2usize..6,
        seed in 0u64..200,
    ) {
        // Theorem 8 (other direction), constructively: every Gallai tree
        // admits a degree-list assignment with no proper coloring, and
        // the canonical disjoint-palette construction is one.
        let g = generators::random_gallai_tree(num_blocks, max_clique, seed);
        let lists = gallai::canonical_failing_lists(&g)
            .expect("generator output is a connected Gallai tree");
        prop_assert!(lists.satisfies_deg(&g));
        prop_assert!(
            gallai::solve_degree_list(&g, &lists, &PartialColoring::new(g.n())).is_err(),
            "canonical failing assignment was colorable"
        );
    }

    #[test]
    fn ball_matches_distances(g in arb_connected_graph(50), r in 0usize..5) {
        let v = NodeId(0);
        let ball = bfs::ball(&g, v, r);
        let dist = bfs::distances(&g, v);
        let expect: Vec<NodeId> = g
            .nodes()
            .filter(|w| dist[w.index()] != bfs::UNREACHABLE && dist[w.index()] as usize <= r)
            .collect();
        prop_assert_eq!(ball.globals.clone(), expect);
        for (i, &w) in ball.globals.iter().enumerate() {
            prop_assert_eq!(ball.dist[i], dist[w.index()]);
        }
    }

    #[test]
    fn marking_postconditions(
        n in 40usize..200,
        p in 0.001f64..0.3,
        b in 1usize..8,
        seed in 0u64..50,
    ) {
        let n = if n % 2 == 1 { n + 1 } else { n };
        let g = generators::random_regular(n, 4, seed);
        let mut coloring = PartialColoring::new(g.n());
        let mut ledger = RoundLedger::new();
        let out = marking_process(&g, MarkingParams { p, b }, seed, &mut coloring, &mut ledger, "m");
        prop_assert!(check_marking(&g, &out, b));
        prop_assert!(coloring.validate_proper(&g).is_ok());
    }

    #[test]
    fn brooks_on_arbitrary_nice_graphs(g in arb_connected_graph(40)) {
        prop_assume!(assert_nice(&g).is_ok());
        let delta = g.max_degree();
        let c = brooks_color(&g, delta).expect("Brooks' theorem");
        prop_assert!(check_delta_coloring(&g, &c).is_ok());
    }

    #[test]
    fn repair_on_arbitrary_nice_graphs(g in arb_connected_graph(40), pick in 0usize..40) {
        prop_assume!(assert_nice(&g).is_ok());
        let delta = g.max_degree();
        let mut c = brooks_color(&g, delta).expect("Brooks' theorem");
        let v = NodeId((pick % g.n()) as u32);
        c.unset(v);
        let mut ledger = RoundLedger::new();
        let out = repair_single_uncolored(&g, &mut c, v, delta, &mut ledger, "r");
        prop_assert!(out.is_ok(), "repair failed: {:?}", out.err());
        prop_assert!(check_delta_coloring(&g, &c).is_ok());
    }

    #[test]
    fn layering_covers_connected_graphs(g in arb_connected_graph(60), base_pick in 0usize..60) {
        let base = NodeId((base_pick % g.n()) as u32);
        let lay = delta_coloring::layering::layers_from_base(&g, &[base], None, None);
        prop_assert!(lay.is_cover());
        // Layer index equals BFS distance.
        let dist = bfs::distances(&g, base);
        for v in g.nodes() {
            prop_assert_eq!(lay.layer_of[v.index()], Some(dist[v.index()]));
        }
    }
}

proptest! {
    // Heavier end-to-end property: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn randomized_delta_coloring_on_arbitrary_nice_graphs(
        g in arb_connected_graph(60),
        seed in 0u64..20,
    ) {
        prop_assume!(assert_nice(&g).is_ok());
        let cfg = delta_coloring::delta::RandConfig::large_delta(&g, seed);
        let mut ledger = RoundLedger::new();
        let (c, _) = delta_coloring::delta::delta_color_rand(&g, cfg, &mut ledger)
            .expect("nice graphs are always colorable (fallback is complete)");
        prop_assert!(check_delta_coloring(&g, &c).is_ok());
    }

    #[test]
    fn deterministic_delta_coloring_on_arbitrary_nice_graphs(g in arb_connected_graph(60)) {
        prop_assume!(assert_nice(&g).is_ok());
        let mut ledger = RoundLedger::new();
        let (c, _) = delta_coloring::delta::delta_color_det(
            &g,
            delta_coloring::delta::DetConfig::default(),
            &mut ledger,
        )
        .expect("nice graphs are Theorem 4 colorable");
        prop_assert!(check_delta_coloring(&g, &c).is_ok());
    }
}

#[test]
fn gallai_forest_detection_matches_block_structure() {
    // Deterministic cross-check on known families.
    assert!(props::is_gallai_forest(&generators::random_gallai_tree(
        12, 5, 3
    )));
    assert!(!props::is_gallai_forest(&generators::torus(4, 4)));
    assert!(!props::is_gallai_forest(&generators::hypercube(3)));
}
