//! Direct validation of the paper's Section 2 structural lemmas on
//! concrete graphs. These are deterministic inequalities — any failure
//! is a real bug (in the implementation or in our reading of the paper).

use delta_coloring::gallai;
use delta_graphs::{bfs, generators, props, Graph, NodeId};

/// Nodes of `g` whose radius-`r` ball contains no DCC (the lemmas'
/// precondition), from a deterministic sample.
fn dcc_free_sample(g: &Graph, r: usize, sample: usize) -> Vec<NodeId> {
    (0..sample as u64)
        .map(|i| NodeId(((i * 2_654_435_761) % g.n() as u64) as u32))
        .filter(|&v| gallai::ball_is_dcc_free(&bfs::ball(g, v, r)))
        .collect()
}

#[test]
fn lemma10_unique_bfs_tree_in_dcc_free_balls() {
    // Lemma 10: if there are no DCCs of radius <= r, the depth-r BFS
    // tree is unique — every node at level t has exactly one neighbor at
    // level t-1.
    let g = generators::random_regular(1 << 13, 4, 3);
    let r = 4;
    for v in dcc_free_sample(&g, r, 200) {
        let ball = bfs::ball(&g, v, r);
        let dist = &ball.dist;
        for u in ball.graph.nodes() {
            let t = dist[u.index()];
            if t == 0 || t as usize >= r {
                continue;
            }
            let parents = ball
                .graph
                .neighbors(u)
                .iter()
                .filter(|w| dist[w.index()] + 1 == t)
                .count();
            assert_eq!(
                parents, 1,
                "node {u} at level {t} of the BFS tree around {v} has {parents} parents"
            );
        }
    }
}

#[test]
fn lemma11_child_count_inequality() {
    // Lemma 11: for u' with deg(u') >= 3 and its BFS ancestor u,
    // d(u) + d(u') >= min(deg(u), deg(u')) in DCC-free balls.
    let g = generators::random_regular(1 << 13, 4, 9);
    let r = 4;
    for v in dcc_free_sample(&g, r, 150) {
        let ball = bfs::ball(&g, v, r);
        let tree = bfs::bfs_tree(&ball.graph, ball.center, Some(r));
        for u2 in ball.graph.nodes() {
            let Some(u) = tree.parent[u2.index()] else {
                continue;
            };
            // Only interior levels (children fully visible inside ball).
            if ball.dist[u2.index()] as usize >= r {
                continue;
            }
            let (du, du2) = (
                tree.child_count(&ball.graph, u),
                tree.child_count(&ball.graph, u2),
            );
            // Degrees measured in G (the ball is deep enough for the
            // interior).
            let (degu, degu2) = (g.degree(ball.to_global(u)), g.degree(ball.to_global(u2)));
            if degu2 < 3 {
                continue;
            }
            assert!(
                du + du2 >= degu.min(degu2),
                "Lemma 11 violated at ({u}, {u2}): d={du}+{du2} < min({degu}, {degu2})"
            );
        }
    }
}

#[test]
fn lemma13_clique_neighborhoods_in_dcc_free_graphs() {
    // Lemma 13: no radius-1 DCC anywhere => every G[N(v)] is a disjoint
    // union of cliques.
    for g in [
        generators::random_regular(2000, 4, 5),
        generators::random_gallai_tree(40, 5, 7),
        generators::random_tree(500, 1),
        generators::complete(8),
    ] {
        let has_r1_dcc = g
            .nodes()
            .any(|v| gallai::find_dcc_for_node(&g, v, 1, 2, usize::MAX).is_some());
        if !has_r1_dcc {
            assert!(
                gallai::neighborhoods_are_clique_unions(&g),
                "Lemma 13 violated on {g:?}"
            );
        }
    }
}

#[test]
fn lemma15_expansion_in_dcc_free_balls() {
    // Lemma 15: Δ-regular + DCC-free within r => |B_r(v)| >= (Δ-1)^(r/2).
    for &delta in &[3usize, 4, 5] {
        let g = generators::random_regular(1 << 13, delta, 11 + delta as u64);
        for &r in &[2usize, 4] {
            let bound = ((delta - 1) as f64).powf(r as f64 / 2.0).ceil() as usize;
            for v in dcc_free_sample(&g, r, 100) {
                let levels = props::level_sizes(&g, v);
                let b_r = levels.get(r).copied().unwrap_or(0);
                assert!(
                    b_r >= bound,
                    "Lemma 15 violated at {v}: |B_{r}| = {b_r} < {bound} (Δ={delta})"
                );
            }
        }
    }
}

#[test]
fn lemma16_dcc_or_low_degree_within_logarithmic_radius() {
    // Lemma 16: every (2 log_{Δ-1} n)-neighborhood contains a DCC or a
    // node of degree < Δ. Check it on nice graphs of several shapes.
    for g in [
        generators::random_regular(4096, 3, 2),
        generators::random_regular(4096, 4, 3),
        generators::torus(32, 32),
        generators::hypercube(10),
    ] {
        let delta = g.max_degree();
        let radius = delta_coloring::brooks::theorem5_radius(g.n(), delta);
        for i in 0..20u64 {
            let v = NodeId(((i * 977) % g.n() as u64) as u32);
            let ball = bfs::ball(&g, v, radius);
            let has_low_degree = ball.globals.iter().any(|&u| g.degree(u) < delta);
            let has_dcc = gallai::find_dcc_in_ball(&ball, usize::MAX, usize::MAX).is_some()
                || has_any_dcc_block(&ball);
            assert!(
                has_low_degree || has_dcc,
                "Lemma 16 violated around {v} in {g:?} at radius {radius}"
            );
        }
    }
}

/// Any block of the ball (not necessarily through the center) that is a
/// DCC — Lemma 16 only asserts existence somewhere in the neighborhood.
fn has_any_dcc_block(ball: &bfs::Ball) -> bool {
    let b = delta_graphs::components::blocks(&ball.graph);
    b.blocks.iter().any(|blk| {
        if blk.len() < 4 {
            return false;
        }
        let (sub, _) = ball.graph.induced(blk);
        delta_graphs::components::is_biconnected(&sub)
            && !props::is_clique(&sub)
            && !props::is_odd_cycle(&sub)
    })
}

#[test]
fn theorem8_gallai_trees_are_exactly_the_non_choosable_graphs() {
    // Spot-check both directions of Theorem 8 on canonical instances.
    // Non-Gallai => every random degree-assignment solvable (spot):
    let theta =
        Graph::from_edges(6, [(0, 1), (1, 5), (0, 2), (2, 5), (0, 3), (3, 4), (4, 5)]).unwrap();
    assert!(!props::is_gallai_forest(&theta));
    for seed in 0..10u64 {
        let lists = pseudo_random_tight_lists(&theta, seed);
        assert!(
            gallai::solve_degree_list(
                &theta,
                &lists,
                &delta_coloring::palette::PartialColoring::new(6)
            )
            .is_ok(),
            "theta rejected seed {seed}"
        );
    }
    // Gallai blocks => canonical identical tight lists fail:
    for g in [generators::complete(4), generators::cycle(5)] {
        let lists = gallai::tight_identical_lists(&g);
        assert!(gallai::solve_degree_list(
            &g,
            &lists,
            &delta_coloring::palette::PartialColoring::new(g.n())
        )
        .is_err());
    }
}

fn pseudo_random_tight_lists(g: &Graph, seed: u64) -> delta_coloring::palette::Lists {
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    delta_coloring::palette::Lists::new(
        g.nodes()
            .map(|v| {
                let universe = g.degree(v) as u64 + 3;
                let mut pool: Vec<u32> = (0..universe as u32).collect();
                for i in (1..pool.len()).rev() {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let j = ((state >> 33) % (i as u64 + 1)) as usize;
                    pool.swap(i, j);
                }
                pool.truncate(g.degree(v));
                pool.into_iter()
                    .map(delta_coloring::palette::Color)
                    .collect()
            })
            .collect(),
    )
}
