//! Cross-crate substrate tests: the LOCAL simulator against the graph
//! algorithms, and round-accounting coherence.

use delta_graphs::{bfs, generators, NodeId};
use local_model::{RoundLedger, Simulator};

#[test]
fn simulator_flooding_equals_bfs_distances() {
    // Distance-vector flooding in the simulator must converge to BFS
    // distances in exactly `eccentricity` rounds — the definition of the
    // LOCAL model's information propagation.
    let g = generators::torus(9, 11);
    let src = NodeId(17);
    let mut ledger = RoundLedger::new();
    let mut sim = Simulator::new(&g, 0, |v| if v == src { 0u32 } else { u32::MAX });
    let ecc = bfs::eccentricity(&g, src) as u64;
    for _ in 0..ecc {
        sim.round(
            &mut ledger,
            "flood",
            |_, &d| if d != u32::MAX { Some(d) } else { None },
            |_, d, inbox| {
                for &(_, m) in inbox {
                    *d = (*d).min(m.saturating_add(1));
                }
            },
        );
    }
    let expect = bfs::distances(&g, src);
    assert_eq!(sim.states(), expect.as_slice());
    assert_eq!(ledger.total(), ecc);
}

#[test]
fn ball_views_match_r_round_knowledge() {
    // After r rounds a node can know exactly its r-ball: simulate
    // gossiping of node ids and compare the learned set to bfs::ball.
    let g = generators::random_regular(200, 3, 5);
    let r = 3;
    let mut ledger = RoundLedger::new();
    let mut sim = Simulator::new(&g, 0, |v| vec![v]);
    for _ in 0..r {
        sim.round(
            &mut ledger,
            "gossip",
            |_, s: &Vec<NodeId>| Some(s.clone()),
            |_, s, inbox| {
                for (_, m) in inbox {
                    s.extend(m.iter().copied());
                }
                s.sort_unstable();
                s.dedup();
            },
        );
    }
    for v in g.nodes().take(20) {
        let ball = bfs::ball(&g, v, r);
        assert_eq!(
            sim.states()[v.index()],
            ball.globals,
            "round-{r} knowledge of {v} differs from its {r}-ball"
        );
    }
    assert_eq!(ledger.total(), r as u64);
}

#[test]
fn power_graph_rounds_match_simulation_factor() {
    // One round on G^k simulates in k rounds on G: verify the MIS round
    // accounting reflects the factor.
    let g = generators::cycle(64);
    let mut l1 = RoundLedger::new();
    let mut l2 = RoundLedger::new();
    let m1 = delta_coloring::mis::luby_mis(&delta_graphs::power::power_graph(&g, 3), 9, &mut l1, "x");
    let m2 = delta_coloring::mis::luby_mis_on_power(&g, 3, 9, &mut l2, "x");
    assert_eq!(m1, m2);
    assert_eq!(l2.total(), 3 * l1.total());
}

#[test]
fn ledger_phases_partition_total() {
    let g = generators::random_regular(300, 4, 2);
    let cfg = delta_coloring::delta::RandConfig::large_delta(&g, 3);
    let mut ledger = RoundLedger::new();
    delta_coloring::delta::delta_color_rand(&g, cfg, &mut ledger).unwrap();
    let by_phase: u64 = ledger.by_phase().iter().map(|&(_, r)| r).sum();
    assert_eq!(by_phase, ledger.total());
    let entries: u64 = ledger.entries().iter().map(|&(_, r)| r).sum();
    assert_eq!(entries, ledger.total());
}

#[test]
fn simulator_rng_is_node_private_and_stable() {
    // Adding a node's randomness consumption must not perturb other
    // nodes' streams (needed for reproducible distributed randomness).
    let g = generators::path(6);
    let draw_all = |consume_extra: bool| -> Vec<u64> {
        let mut ledger = RoundLedger::new();
        let mut sim = Simulator::new(&g, 42, |_| 0u64);
        sim.round(
            &mut ledger,
            "draw",
            |_, _| Some(()),
            |ctx, s, _| {
                if consume_extra && ctx.id == NodeId(0) {
                    let _ = ctx.random_below(10);
                }
                *s = ctx.random_below(1_000_000);
            },
        );
        sim.into_states()
    };
    let a = draw_all(false);
    let b = draw_all(true);
    assert_ne!(a[0], b[0], "node 0 consumed extra randomness");
    assert_eq!(a[1..], b[1..], "other nodes' streams were perturbed");
}
