//! Cross-crate substrate tests: the LOCAL engine against the graph
//! algorithms, and round-accounting coherence.

use delta_graphs::{bfs, generators, NodeId};
use local_model::{Engine, NodeCtx, NodeProgram, Outbox, RoundLedger};

#[test]
fn engine_flooding_equals_bfs_distances() {
    // Distance-vector flooding in the engine must converge to BFS
    // distances in exactly `eccentricity` rounds — the definition of the
    // LOCAL model's information propagation.
    let g = generators::torus(9, 11);
    let src = NodeId(17);
    let mut ledger = RoundLedger::new();
    let mut engine = Engine::new(&g, 0, |v| if v == src { 0u32 } else { u32::MAX });
    let ecc = bfs::eccentricity(&g, src) as u64;
    for _ in 0..ecc {
        engine.step(
            &mut ledger,
            "flood",
            |_, &mut d, out: &mut Outbox<u32>| {
                if d != u32::MAX {
                    out.broadcast(d);
                }
            },
            |_, d, inbox| {
                for &(_, m) in inbox {
                    *d = (*d).min(m.saturating_add(1));
                }
            },
        );
    }
    let expect = bfs::distances(&g, src);
    assert_eq!(engine.states(), expect.as_slice());
    assert_eq!(ledger.total(), ecc);
}

#[test]
fn ball_views_match_r_round_knowledge() {
    // After r rounds a node can know exactly its r-ball: gossip node ids
    // as a NodeProgram and compare the learned set to bfs::ball.
    struct Gossip;
    impl NodeProgram for Gossip {
        type State = Vec<NodeId>;
        type Msg = Vec<NodeId>;
        fn send(&self, _: &mut NodeCtx<'_>, s: &mut Vec<NodeId>, out: &mut Outbox<Vec<NodeId>>) {
            out.broadcast(s.clone());
        }
        fn recv(&self, _: &mut NodeCtx<'_>, s: &mut Vec<NodeId>, inbox: &[(NodeId, Vec<NodeId>)]) {
            for (_, m) in inbox {
                s.extend(m.iter().copied());
            }
            s.sort_unstable();
            s.dedup();
        }
    }
    let g = generators::random_regular(200, 3, 5);
    let r = 3;
    let mut ledger = RoundLedger::new();
    let mut engine = Engine::new(&g, 0, |v| vec![v]);
    for _ in 0..r {
        engine.round(&Gossip, &mut ledger, "gossip");
    }
    for v in g.nodes().take(20) {
        let ball = bfs::ball(&g, v, r);
        assert_eq!(
            engine.states()[v.index()],
            ball.globals,
            "round-{r} knowledge of {v} differs from its {r}-ball"
        );
    }
    assert_eq!(ledger.total(), r as u64);
}

#[test]
fn directed_messages_route_along_bfs_tree() {
    // Per-neighbor messaging: after a flood establishes BFS parents,
    // every node reports its id upward one hop; only parents receive it.
    let g = generators::torus(6, 6);
    let src = NodeId(0);
    let dist = bfs::distances(&g, src);
    // Parent: the smallest neighbor one level closer to the source.
    let parent: Vec<Option<NodeId>> = g
        .nodes()
        .map(|v| {
            g.neighbors(v)
                .iter()
                .copied()
                .find(|&w| dist[w.index()] + 1 == dist[v.index()])
        })
        .collect();
    let mut ledger = RoundLedger::new();
    let mut engine = Engine::new(&g, 0, |_| Vec::<NodeId>::new());
    let parent_ref = &parent;
    engine.step(
        &mut ledger,
        "report",
        move |ctx, _, out: &mut Outbox<NodeId>| {
            if let Some(p) = parent_ref[ctx.id.index()] {
                out.send_to(p, ctx.id);
            }
        },
        |_, s, inbox| {
            s.extend(inbox.iter().map(|&(_, child)| child));
        },
    );
    // Every non-source node reported; each report arrived exactly at the
    // parent, so the received-children counts sum to n - 1.
    let received: usize = engine.states().iter().map(Vec::len).sum();
    assert_eq!(received, g.n() - 1);
    let stats = engine.message_stats();
    assert_eq!(stats.directed, g.n() as u64 - 1);
    assert_eq!(stats.deliveries, g.n() as u64 - 1);
    // A node's recorded children are exactly the nodes it parents.
    for v in g.nodes() {
        let mut expect: Vec<NodeId> = g
            .nodes()
            .filter(|&c| parent[c.index()] == Some(v))
            .collect();
        expect.sort_unstable();
        let mut got = engine.states()[v.index()].clone();
        got.sort_unstable();
        assert_eq!(got, expect, "children of {v}");
    }
}

#[test]
fn power_graph_rounds_match_simulation_factor() {
    // One round on G^k simulates in k rounds on G: verify the MIS round
    // accounting reflects the factor.
    let g = generators::cycle(64);
    let mut l1 = RoundLedger::new();
    let mut l2 = RoundLedger::new();
    let m1 =
        delta_coloring::mis::luby_mis(&delta_graphs::power::power_graph(&g, 3), 9, &mut l1, "x");
    let m2 = delta_coloring::mis::luby_mis_on_power(&g, 3, 9, &mut l2, "x");
    assert_eq!(m1, m2);
    assert_eq!(l2.total(), 3 * l1.total());
}

#[test]
fn ledger_phases_partition_total() {
    let g = generators::random_regular(300, 4, 2);
    let cfg = delta_coloring::delta::RandConfig::large_delta(&g, 3);
    let mut ledger = RoundLedger::new();
    delta_coloring::delta::delta_color_rand(&g, cfg, &mut ledger).unwrap();
    let by_phase: u64 = ledger.by_phase().iter().map(|&(_, r)| r).sum();
    assert_eq!(by_phase, ledger.total());
    let entries: u64 = ledger.entries().iter().map(|&(_, r)| r).sum();
    assert_eq!(entries, ledger.total());
}

#[test]
fn engine_rng_is_node_private_and_stable() {
    // Adding a node's randomness consumption must not perturb other
    // nodes' streams (needed for reproducible distributed randomness).
    let g = generators::path(6);
    let draw_all = |consume_extra: bool| -> Vec<u64> {
        let mut ledger = RoundLedger::new();
        let mut engine = Engine::new(&g, 42, |_| 0u64);
        engine.step(
            &mut ledger,
            "draw",
            |_, _, out: &mut Outbox<()>| out.broadcast(()),
            |ctx, s, _| {
                if consume_extra && ctx.id == NodeId(0) {
                    let _ = ctx.random_below(10);
                }
                *s = ctx.random_below(1_000_000);
            },
        );
        engine.into_states()
    };
    let a = draw_all(false);
    let b = draw_all(true);
    assert_ne!(a[0], b[0], "node 0 consumed extra randomness");
    assert_eq!(a[1..], b[1..], "other nodes' streams were perturbed");
}
