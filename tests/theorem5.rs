//! Focused tests for the distributed Brooks' theorem (Theorem 5):
//! adversarial partial colorings, radius bounds, and repair independence.

use delta_coloring::brooks::{brooks_color, repair_single_uncolored, theorem5_radius};
use delta_coloring::verify::check_delta_coloring;
use delta_graphs::{bfs, generators, NodeId};
use local_model::RoundLedger;

#[test]
fn repair_radius_never_exceeds_theorem_bound() {
    for &(n, delta) in &[(256usize, 3usize), (1024, 3), (1024, 4), (2048, 5)] {
        let g = generators::random_regular(n, delta, (n + delta) as u64);
        let base = brooks_color(&g, delta).expect("brooks");
        let bound = theorem5_radius(n, delta);
        for i in 0..20u64 {
            let v = NodeId(((i * 97 + 5) % n as u64) as u32);
            let mut c = base.clone();
            c.unset(v);
            let mut ledger = RoundLedger::new();
            let out = repair_single_uncolored(&g, &mut c, v, delta, &mut ledger, "r").unwrap();
            check_delta_coloring(&g, &c).unwrap();
            assert!(out.radius <= bound, "radius {} > bound {bound}", out.radius);
        }
    }
}

#[test]
fn repair_changes_only_the_local_ball() {
    // Theorem 5's whole point: the fix is local. Diff the colorings and
    // check every changed node sits within the repair radius of v.
    let n = 4096;
    let delta = 4;
    let g = generators::random_regular(n, delta, 1234);
    let base = brooks_color(&g, delta).expect("brooks");
    for i in 0..10u64 {
        let v = NodeId(((i * 409 + 11) % n as u64) as u32);
        let mut c = base.clone();
        c.unset(v);
        let mut ledger = RoundLedger::new();
        let out = repair_single_uncolored(&g, &mut c, v, delta, &mut ledger, "r").unwrap();
        let dist = bfs::distances(&g, v);
        for w in g.nodes() {
            if c.get(w) != base.get(w) {
                assert!(
                    dist[w.index()] as usize <= out.radius.max(1),
                    "node {w} changed at distance {} but radius was {}",
                    dist[w.index()],
                    out.radius
                );
            }
        }
    }
}

#[test]
fn repairs_in_distant_regions_are_independent() {
    // Two uncolored nodes far apart: repairing one then the other must
    // both succeed and stay local (the deterministic algorithm's B_0
    // step relies on this).
    let n = 8192;
    let delta = 4;
    let g = generators::random_regular(n, delta, 777);
    let mut c = brooks_color(&g, delta).expect("brooks");
    let v1 = NodeId(0);
    let d = bfs::distances(&g, v1);
    // The most distant node (a random-regular graph's diameter is
    // ~log_{Δ-1} n, far above observed repair radii).
    let v2 = g.nodes().max_by_key(|w| d[w.index()]).unwrap();
    c.unset(v1);
    c.unset(v2);
    let mut ledger = RoundLedger::new();
    let o1 = repair_single_uncolored(&g, &mut c, v1, delta, &mut ledger, "r").unwrap();
    let o2 = repair_single_uncolored(&g, &mut c, v2, delta, &mut ledger, "r").unwrap();
    check_delta_coloring(&g, &c).unwrap();
    assert!(
        o1.radius + o2.radius <= d[v2.index()] as usize,
        "repairs overlapped"
    );
}

#[test]
fn repair_on_low_degree_targets_is_cheap() {
    // Perturbed graphs have degree-deficient nodes scattered around;
    // repairs should end at the nearest one with tiny radius.
    let g = generators::perturbed_regular(2048, 4, 0.05, 3);
    if delta_coloring::verify::assert_nice(&g).is_err() {
        return;
    }
    let delta = g.max_degree();
    let base = brooks_color(&g, delta).expect("brooks");
    let mut total_radius = 0usize;
    let trials = 20u64;
    for i in 0..trials {
        let v = NodeId(((i * 131 + 3) % g.n() as u64) as u32);
        let mut c = base.clone();
        c.unset(v);
        let mut ledger = RoundLedger::new();
        let out = repair_single_uncolored(&g, &mut c, v, delta, &mut ledger, "r").unwrap();
        check_delta_coloring(&g, &c).unwrap();
        total_radius += out.radius;
    }
    // Average radius far below the worst-case bound.
    assert!(
        (total_radius as f64 / trials as f64) < theorem5_radius(g.n(), delta) as f64 / 2.0,
        "repairs were not local: avg {}",
        total_radius as f64 / trials as f64
    );
}

#[test]
fn repair_walks_token_when_neighborhood_is_tight() {
    // Build a coloring where the victim's neighbors show all Δ colors.
    // Color-permute around a node on a torus: node v's 4 neighbors get
    // 4 distinct colors by the structure of our coloring of the torus.
    let g = generators::torus(16, 16);
    let delta = 4;
    for seed in 0..6u64 {
        let base = brooks_color(&g, delta).expect("brooks");
        let v = NodeId(((seed * 53 + 17) % 256) as u32);
        let mut c = base.clone();
        c.unset(v);
        let tight = c.free_colors(&g, v, delta).is_empty();
        let mut ledger = RoundLedger::new();
        let out = repair_single_uncolored(&g, &mut c, v, delta, &mut ledger, "r").unwrap();
        check_delta_coloring(&g, &c).unwrap();
        if tight {
            assert!(
                out.moved > 0 || out.used_dcc,
                "tight neighborhood must trigger token movement or DCC recoloring"
            );
        }
    }
}
