//! Failure injection: malformed inputs, adversarial partial colorings,
//! and Brooks-exception instances must produce clean errors (never
//! panics, never silently-invalid colorings).

use delta_coloring::brooks;
use delta_coloring::delta::{
    delta_color_det, delta_color_netdecomp, delta_color_rand, delta_color_slocal, DetConfig,
    RandConfig,
};
use delta_coloring::gallai;
use delta_coloring::list_coloring::{self, ListColorMethod};
use delta_coloring::marking::MarkingParams;
use delta_coloring::palette::{Color, ColoringError, Lists, PartialColoring};
use delta_graphs::{generators, Graph, NodeId};
use local_model::RoundLedger;

fn non_nice_zoo() -> Vec<(&'static str, Graph)> {
    vec![
        ("clique", generators::complete(6)),
        ("odd-cycle", generators::cycle(11)),
        ("even-cycle", generators::cycle(12)),
        ("path", generators::path(9)),
        ("single-edge", generators::path(2)),
        (
            "disconnected",
            generators::cycle(5).disjoint_union(&generators::complete(4)),
        ),
        ("empty", Graph::empty(0)),
        ("edgeless", Graph::empty(7)),
    ]
}

#[test]
fn every_entry_point_rejects_non_nice_inputs() {
    for (name, g) in non_nice_zoo() {
        let cfg = RandConfig::large_delta(&g, 0);
        assert!(
            delta_color_rand(&g, cfg, &mut RoundLedger::new()).is_err(),
            "rand accepted {name}"
        );
        assert!(
            delta_color_det(&g, DetConfig::default(), &mut RoundLedger::new()).is_err(),
            "det accepted {name}"
        );
        assert!(
            delta_color_netdecomp(&g, ListColorMethod::Randomized, 0, &mut RoundLedger::new())
                .is_err(),
            "netdecomp accepted {name}"
        );
        assert!(delta_color_slocal(&g).is_err(), "slocal accepted {name}");
    }
}

#[test]
fn error_messages_name_the_problem() {
    let e = delta_color_rand(
        &generators::complete(5),
        RandConfig::large_delta(&generators::complete(5), 0),
        &mut RoundLedger::new(),
    )
    .unwrap_err();
    assert!(e.to_string().contains("complete"), "unhelpful error: {e}");
    let e2 = delta_color_det(
        &generators::cycle(9),
        DetConfig::default(),
        &mut RoundLedger::new(),
    )
    .unwrap_err();
    assert!(e2.to_string().contains("cycle"), "unhelpful error: {e2}");
}

#[test]
fn repair_fails_cleanly_on_brooks_exceptions() {
    // A clique minus nothing: Δ-coloring doesn't exist, so repair must
    // report Unsolvable instead of looping or panicking.
    let g = generators::complete(5);
    let mut c = PartialColoring::new(5);
    for i in 1..5u32 {
        c.set(NodeId(i), Color(i - 1));
    }
    // Node 0 uncolored; its 4 neighbors block all 4 colors; K5 has no
    // degree-<Δ node and no DCC.
    let err =
        brooks::repair_single_uncolored(&g, &mut c, NodeId(0), 4, &mut RoundLedger::new(), "r");
    assert!(matches!(err, Err(ColoringError::Unsolvable { .. })));
}

#[test]
fn repair_on_odd_cycle_reports_unsolvable() {
    let g = generators::cycle(9);
    let mut c = PartialColoring::new(9);
    for i in 1..9u32 {
        c.set(NodeId(i), Color(i % 2));
    }
    let err =
        brooks::repair_single_uncolored(&g, &mut c, NodeId(0), 2, &mut RoundLedger::new(), "r");
    assert!(err.is_err());
}

#[test]
fn unsolvable_list_instances_error_not_panic() {
    // Identical singleton lists on a clique.
    let g = generators::complete(4);
    let lists = Lists::new(vec![vec![Color(0)]; 4]);
    for method in [ListColorMethod::Randomized, ListColorMethod::Deterministic] {
        let r = list_coloring::list_color(
            &g,
            &lists,
            PartialColoring::new(4),
            method,
            1,
            &mut RoundLedger::new(),
            "lc",
        );
        assert!(matches!(r, Err(ColoringError::Unsolvable { .. })));
    }
}

#[test]
fn degree_list_solver_rejects_gallai_blocks_with_canonical_lists() {
    for (g, _) in [
        (generators::complete(5), "K5"),
        (generators::cycle(7), "C7"),
        (generators::cycle(3), "K3"),
    ] {
        let lists = gallai::tight_identical_lists(&g);
        assert!(gallai::solve_degree_list(&g, &lists, &PartialColoring::new(g.n())).is_err());
    }
}

#[test]
fn adversarial_precoloring_respected_or_rejected() {
    // Fix colors that force the solver into a corner: C6 with alternate
    // nodes pinned to the same color is still completable; pinning two
    // adjacent nodes to one color must be detected by validation.
    let g = generators::cycle(6);
    let mut fixed = PartialColoring::new(6);
    fixed.set(NodeId(0), Color(0));
    fixed.set(NodeId(2), Color(0));
    fixed.set(NodeId(4), Color(0));
    let lists = Lists::uniform(6, 2);
    let solved = gallai::solve_degree_list(&g, &lists, &fixed).unwrap();
    solved.validate_proper(&g).unwrap();
    assert_eq!(solved.get(NodeId(0)), Some(Color(0)));

    let mut bad = PartialColoring::new(6);
    bad.set(NodeId(0), Color(1));
    bad.set(NodeId(1), Color(1));
    assert!(bad.validate_proper(&g).is_err());
}

#[test]
fn marking_with_extreme_parameters_stays_sound() {
    let g = generators::random_regular(300, 4, 5);
    for (p, b) in [(0.0, 6), (1.0, 0), (1.0, 50), (0.5, 1)] {
        let mut coloring = PartialColoring::new(g.n());
        let mut ledger = RoundLedger::new();
        let out = delta_coloring::marking::marking_process(
            &g,
            MarkingParams { p, b },
            3,
            &mut coloring,
            &mut ledger,
            "m",
        );
        assert!(delta_coloring::marking::check_marking(&g, &out, b));
        coloring.validate_proper(&g).unwrap();
    }
}

#[test]
fn rand_config_with_zero_detect_radius_still_colors() {
    // Disabling DCC removal entirely must still converge (shattering or
    // fallback paths take over).
    let g = generators::random_regular(400, 4, 8);
    let mut cfg = RandConfig::large_delta(&g, 2);
    cfg.r_detect = 0;
    let mut ledger = RoundLedger::new();
    let (c, _) = delta_color_rand(&g, cfg, &mut ledger).unwrap();
    delta_coloring::verify::check_delta_coloring(&g, &c).unwrap();
}

#[test]
fn rand_with_hostile_marking_parameters_still_colors() {
    let g = generators::random_regular(400, 4, 9);
    for (p, b) in [(0.9, 6), (1e-9, 6), (0.3, 1)] {
        let mut cfg = RandConfig::large_delta(&g, 4);
        cfg.marking = MarkingParams { p, b };
        let mut ledger = RoundLedger::new();
        let (c, _) =
            delta_color_rand(&g, cfg, &mut ledger).unwrap_or_else(|e| panic!("p={p} b={b}: {e}"));
        delta_coloring::verify::check_delta_coloring(&g, &c).unwrap();
    }
}

#[test]
fn verifier_catches_planted_violations() {
    let g = generators::torus(6, 6);
    let cfg = RandConfig::large_delta(&g, 1);
    let mut ledger = RoundLedger::new();
    let (mut c, _) = delta_color_rand(&g, cfg, &mut ledger).unwrap();
    // Plant a palette violation.
    c.set(NodeId(0), Color(99));
    assert!(delta_coloring::verify::check_delta_coloring(&g, &c).is_err());
    // Plant a monochromatic edge.
    let (u, v) = g.edges().next().unwrap();
    let cu = c.get(u);
    c.set(NodeId(0), Color(0));
    c.set(v, cu.unwrap_or(Color(0)));
    c.set(u, cu.unwrap_or(Color(0)));
    assert!(delta_coloring::verify::check_delta_coloring(&g, &c).is_err());
    // Plant an uncolored node.
    c.unset(NodeId(5));
    assert!(delta_coloring::verify::check_delta_coloring(&g, &c).is_err());
}
